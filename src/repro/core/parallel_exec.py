"""Real multi-process parallel execution of partitioned spatial joins.

:mod:`repro.core.parallel` *models* the paper's §6 CPU/I-O-parallelism
outlook with a deterministic LPT-scheduling simulator; this module runs
it for real.  The tasks produced by a :mod:`repro.core.partition`
strategy — uniform grid tiles (``JoinConfig(partitioner="grid")``) or
tree-guided leaf-overlap tasks from the synchronized R*-tree traversal
(``partitioner="rtree"``) — are shipped to a
:class:`concurrent.futures.ProcessPoolExecutor`, joined locally in each
worker with the configured engine (streaming or batched),
de-duplicated where the strategy requires it (grid tiles use the
reference-tile rule of the serial partitioned join; tree tasks are
disjoint by construction and skip it), and merged back into one
deterministic result.

Two wire formats carry a tile to its worker:

* **Columnar shared memory** (``JoinConfig(columnar=True)``, default) —
  the parent writes each relation's packed ring columns
  (:class:`repro.datasets.columnar.RingColumns`) into one
  :class:`multiprocessing.shared_memory.SharedMemory` segment, once per
  join.  A :class:`ColumnarTileTask` then pickles only the segment
  descriptors plus two per-tile index arrays; workers map the segments
  and gather their slice zero-copy, rebuilding polygons bit-identically
  via :meth:`Polygon.from_normalized`.  Replicated objects cost nothing
  extra on the wire (the columns ship once, indices are cheap), which
  removes the pickling cost that used to dominate small joins.
* **Pickled slices** (``columnar=False``, the legacy format) — each
  :class:`TileTask` carries its relation slices as ``(oid, polygon)``
  pairs; replicated objects are pickled once per tile they touch.

How tiles reach the workers is a pluggable **scheduler** strategy
(``JoinConfig(scheduler=...)``, CLI ``join --scheduler``):

* ``static`` (default) — tiles are submitted and collected in tile-key
  order, exactly the historical ``pool.map`` behaviour; the
  differential baseline.
* ``stealing`` — tiles are dispatched largest-first (candidate-volume
  order) and idle workers pull the next pending tile as they finish
  (``submit``/``as_completed``), so one straggling hot tile no longer
  serialises the tail of the join.  Completion order is observable in
  :class:`DispatchReport` (``steal_count`` on the result counts
  completions that overtook an earlier-dispatched tile).

Either way a worker exception is re-raised in the parent as
:class:`TileExecutionError` carrying the failing tile's index, and the
shared segments are still unlinked.

Setup costs can be amortised across joins with a
:class:`repro.core.session.JoinSession`: the session owns a long-lived
worker pool and a cache of shared-memory segments keyed by relation
fingerprint, so repeated joins of the same relations fork no new
workers and ship zero redundant bytes.  Sessionless calls keep the
one-shot lifecycle (segments created before dispatch, unlinked in
``finally``).

Either way the guarantees are the same:

* **Result transparency** — the merged pair list equals the serial
  partitioned join's (and therefore the plain multi-step join's up to
  order); outcomes are folded in tile-key order regardless of which
  worker finished first, so the output order is byte-identical to
  :func:`repro.core.partition.partitioned_join` under every scheduler.
* **Stats transparency** — every worker returns its tile's full
  :class:`~repro.core.stats.MultiStepStats`; the parent folds them with
  the associative :meth:`MultiStepStats.merge`, so the merged counters
  equal the serial partitioned join's exactly.
* **Degenerate pool** — ``workers=1`` executes the identical task
  objects in-process but still round-trips each task and outcome
  through :mod:`pickle`, so the single-worker path proves the IPC
  format without paying for a pool.
* **Segment lifecycle** — shared segments are created before dispatch
  and unlinked in a ``finally`` block, so success, worker failure, and
  KeyboardInterrupt all leave ``/dev/shm`` clean
  (``tests/test_parallel_exec_shm.py`` enforces it;
  :func:`live_shared_segments` exposes the tracking set).

**Proximity predicates** (``predicate="distance"`` / ``"knn"``) ride
the same machinery through ε-aware task plans
(:meth:`~repro.core.partition.Partitioner.plan_proximity`): grid tasks
replicate objects by their ε/2-expanded MBRs and workers apply the
owning-task rule on the expanded MBRs *before any counter moves* (the
drop lands in ``MultiStepStats.dedup_dropped``), so merged distance
flow counters equal the plain serial pipeline's; tree tasks prune the
synchronized traversal by rectangle distance and stay disjoint; kNN
tasks carry disjoint left rows plus the right rows within each
member's k-th-neighbour upper bound, and merged pairs are re-sorted to
the serial left-relation order.  Only tiny joins — candidate volume
below :data:`PROXIMITY_SERIAL_VOLUME`, a rule that never reads
execution-only fields, keeping the service result cache coherent —
route to the plain serial pipeline instead.

``tests/test_parallel_exec_equivalence.py`` is the differential suite
that enforces the transparency guarantees across engines, predicates,
and worker counts; ``tests/test_proximity_parallel_equivalence.py``
extends them to the ε-aware proximity plans.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from abc import ABC, abstractmethod
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from multiprocessing import shared_memory
from typing import Callable, ClassVar, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..datasets.columnar import RingColumns, unpack_polygon
from ..datasets.relations import SpatialObject, SpatialRelation
from ..geometry import Polygon, Rect
from ..geometry.kernels import resolve_backend, warm_up
from .join import SCHEDULERS, JoinConfig, SpatialJoinProcessor, validate_grid
from .partition import (
    PartitionedJoinResult,
    PartitionPlan,
    PartitionStats,
    create_partitioner,
    owning_tile,
    subrelation,
)
from .stats import MultiStepStats

#: ``(oid, polygon)`` — the wire format of one relation slice entry.
WireObject = Tuple[int, Polygon]


@dataclass(frozen=True)
class TileTask:
    """Picklable unit of work: one tile's local join (pickled slices).

    Carries everything a worker needs and nothing it does not: the two
    relation slices as ``(oid, polygon)`` pairs (cached approximations
    and TR*-trees are rebuilt in the worker — they are derived data),
    the task key, the reference-tile de-duplication frame
    (``space``/``grid`` — both ``None`` for tree-guided tasks, whose
    candidate sets are disjoint by construction), and the full
    :class:`JoinConfig`.
    """

    tile: Tuple[int, int]
    name_a: str
    name_b: str
    objects_a: Tuple[WireObject, ...]
    objects_b: Tuple[WireObject, ...]
    space: Optional[Tuple[float, float, float, float]]
    grid: Optional[Tuple[int, int]]
    config: JoinConfig


@dataclass(frozen=True)
class SharedRelationSpec:
    """Descriptor of one relation's ring columns in a shared segment.

    Everything a worker needs to remap the columns: the segment name and
    the three column lengths that fix the in-segment layout (see
    :func:`_column_views`).  ``origin_pid`` lets attachers distinguish
    the creating process (which keeps its resource-tracker registration)
    from workers (which must unregister theirs — the parent owns the
    unlink).
    """

    shm_name: str
    relation_name: str
    n_objects: int
    n_rings: int
    n_points: int
    origin_pid: int


@dataclass(frozen=True, eq=False)
class ColumnarTileTask:
    """Unit of work in the columnar wire format: descriptors + indices.

    Pickling this ships ~tens of bytes of segment descriptors plus two
    index arrays; the geometry itself travels through shared memory.
    """

    tile: Tuple[int, int]
    spec_a: SharedRelationSpec
    spec_b: SharedRelationSpec
    idx_a: np.ndarray
    idx_b: np.ndarray
    space: Optional[Tuple[float, float, float, float]]
    grid: Optional[Tuple[int, int]]
    config: JoinConfig


@dataclass
class TileOutcome:
    """What a worker sends back: owned pairs by oid, plus full stats."""

    tile: Tuple[int, int]
    id_pairs: List[Tuple[int, int]]
    stats: MultiStepStats
    elapsed_seconds: float


@dataclass
class ParallelPartitionedJoinResult(PartitionedJoinResult):
    """Serial-identical join result plus parallel-execution telemetry."""

    workers: int = 1
    tile_tasks: int = 0
    elapsed_seconds: float = 0.0
    #: per-tile wall-clock seconds measured inside the workers.
    tile_seconds: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: wire format used: "columnar-shm" or "pickled-slices".
    wire_format: str = "pickled-slices"
    #: bytes newly placed in shared memory by this join (columnar wire
    #: format only; 0 when a warm session reused every segment).
    shared_payload_bytes: int = 0
    #: scheduler that dispatched the tiles: "static" or "stealing".
    scheduler: str = "static"
    #: tile-formation strategy that produced the tasks: "grid" or
    #: "rtree" (tree-guided leaf-overlap tasks).
    partitioner: str = "grid"
    #: completions that overtook an earlier-dispatched, still-pending
    #: tile — dynamic balancing in action (0 under "static").
    steal_count: int = 0
    #: tile keys in the order their outcomes arrived.
    completion_order: List[Tuple[int, int]] = field(default_factory=list)
    #: shared segments served from / added to the segment cache by this
    #: join: a warm session join reports ``hits=2, misses=0``; a
    #: sessionless columnar join always creates both segments fresh
    #: (``hits=0, misses=2``); the pickled-slice wire format ships no
    #: segments at all (``0``/``0``).
    segment_cache_hits: int = 0
    segment_cache_misses: int = 0
    #: bytes served from the session's segment cache instead of being
    #: re-shipped (columnar wire format inside a warm session).
    reused_payload_bytes: int = 0

    @property
    def busy_seconds(self) -> float:
        """Total worker-side join time (the parallelisable work)."""
        return sum(self.tile_seconds.values())


# ---------------------------------------------------------------------------
# Shared-memory segments for the columnar wire format.
# ---------------------------------------------------------------------------

#: names of segments created by this process and not yet unlinked.
_LIVE_SEGMENTS: Set[str] = set()


def live_shared_segments() -> frozenset:
    """Names of shared segments this process still owns (for tests)."""
    return frozenset(_LIVE_SEGMENTS)


def _column_views(buf, n_objects: int, n_rings: int, n_points: int) -> RingColumns:
    """Map the fixed segment layout back onto numpy column views.

    Layout (contiguous, all 8-byte items): oids ``int64[n]``,
    object_rings ``int64[n + 1]``, ring_offsets ``int64[n_rings + 1]``,
    ring_xy ``float64[n_points, 2]``.
    """
    offset = 0
    oids = np.ndarray((n_objects,), dtype=np.int64, buffer=buf, offset=offset)
    offset += 8 * n_objects
    object_rings = np.ndarray(
        (n_objects + 1,), dtype=np.int64, buffer=buf, offset=offset
    )
    offset += 8 * (n_objects + 1)
    ring_offsets = np.ndarray(
        (n_rings + 1,), dtype=np.int64, buffer=buf, offset=offset
    )
    offset += 8 * (n_rings + 1)
    ring_xy = np.ndarray(
        (n_points, 2), dtype=np.float64, buffer=buf, offset=offset
    )
    return RingColumns(oids, object_rings, ring_offsets, ring_xy)


def _segment_size(n_objects: int, n_rings: int, n_points: int) -> int:
    return 8 * ((n_objects) + (n_objects + 1) + (n_rings + 1) + 2 * n_points)


def segment_column_layout(
    n_objects: int, n_rings: int, n_points: int
) -> List[Tuple[str, int, int]]:
    """``(column, byte_offset, nbytes)`` of each ring column in a segment.

    The byte-level description of :func:`_column_views`'s layout, in
    segment order.  The persistent store writes its ring pages with
    exactly these dtypes and extents
    (:data:`repro.datasets.store.RING_COLUMNS`), so a warm loader can
    stream each page file straight into its slice of the segment buffer
    — no numpy round trip, no re-packing
    (:meth:`repro.core.session.JoinSession.warm_from_store`).
    """
    sizes = (
        ("oids", 8 * n_objects),
        ("object_rings", 8 * (n_objects + 1)),
        ("ring_offsets", 8 * (n_rings + 1)),
        ("ring_xy", 16 * n_points),
    )
    layout: List[Tuple[str, int, int]] = []
    offset = 0
    for name, nbytes in sizes:
        layout.append((name, offset, nbytes))
        offset += nbytes
    return layout


class SharedRelationSegment:
    """One relation's packed ring columns in one shared-memory segment.

    The unit of segment ownership: created once per relation content,
    attached (read-only) by any number of tile tasks, and unlinked
    exactly once by whoever owns it — a per-join
    :class:`ColumnarShipment` or a cross-join
    :class:`repro.core.session.JoinSession` segment cache, which keys
    reuse on :attr:`fingerprint`.
    """

    def __init__(self, relation: SpatialRelation):
        store = relation.columnar()
        columns = store.rings
        self.fingerprint = store.fingerprint
        n = len(columns.oids)
        n_rings = len(columns.ring_offsets) - 1
        n_points = len(columns.ring_xy)
        self._shm: Optional[shared_memory.SharedMemory] = (
            shared_memory.SharedMemory(
                create=True,
                size=max(8, _segment_size(n, n_rings, n_points)),
            )
        )
        _LIVE_SEGMENTS.add(self._shm.name)
        try:
            self.nbytes = self._shm.size
            views = _column_views(self._shm.buf, n, n_rings, n_points)
            views.oids[:] = columns.oids
            views.object_rings[:] = columns.object_rings
            views.ring_offsets[:] = columns.ring_offsets
            views.ring_xy[:] = columns.ring_xy
            del views
            self.spec = SharedRelationSpec(
                shm_name=self._shm.name,
                relation_name=relation.name,
                n_objects=n,
                n_rings=n_rings,
                n_points=n_points,
                origin_pid=os.getpid(),
            )
        except BaseException:
            self.close()
            raise

    @classmethod
    def allocate(
        cls,
        relation_name: str,
        fingerprint: str,
        n_objects: int,
        n_rings: int,
        n_points: int,
    ) -> "SharedRelationSegment":
        """An uninitialised segment of the right size, ready to be filled.

        The store warm-up path: the caller streams the relation's ring
        pages into :attr:`buf` at the :func:`segment_column_layout`
        offsets (byte-identical to what :meth:`__init__` would have
        copied from a packed :class:`~repro.datasets.columnar.RingColumns`)
        before handing the segment to any consumer.  Lifecycle is
        identical to a packed segment: tracked in
        :func:`live_shared_segments`, unlinked by :meth:`close`.
        """
        segment = cls.__new__(cls)
        segment.fingerprint = fingerprint
        segment._shm = shared_memory.SharedMemory(
            create=True,
            size=max(8, _segment_size(n_objects, n_rings, n_points)),
        )
        _LIVE_SEGMENTS.add(segment._shm.name)
        segment.nbytes = segment._shm.size
        segment.spec = SharedRelationSpec(
            shm_name=segment._shm.name,
            relation_name=relation_name,
            n_objects=n_objects,
            n_rings=n_rings,
            n_points=n_points,
            origin_pid=os.getpid(),
        )
        return segment

    @property
    def buf(self):
        """The segment's raw buffer (fill target of the warm loader)."""
        if self._shm is None:
            raise RuntimeError("segment is closed")
        return self._shm.buf

    @property
    def closed(self) -> bool:
        return self._shm is None

    def close(self) -> None:
        """Unlink the segment (idempotent)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            _LIVE_SEGMENTS.discard(shm.name)


class ColumnarShipment:
    """Parent-side owner of one join's per-relation shared segments.

    Creating the shipment copies each relation's packed ring columns
    into one :class:`SharedRelationSegment`; :meth:`close` unlinks them
    all.  Callers must close in a ``finally`` block — the lifecycle
    tests assert that no ``/dev/shm`` entry survives success, worker
    failure, or interrupt.  (Session-cached segments are not wrapped in
    a shipment: their lifecycle belongs to the session.)
    """

    def __init__(self, relations: Sequence[SpatialRelation]):
        self._segments: List[SharedRelationSegment] = []
        try:
            for relation in relations:
                self._segments.append(SharedRelationSegment(relation))
        except BaseException:
            self.close()
            raise

    @property
    def specs(self) -> List[SharedRelationSpec]:
        return [segment.spec for segment in self._segments]

    @property
    def segment_names(self) -> Tuple[str, ...]:
        return tuple(segment.spec.shm_name for segment in self._segments)

    @property
    def total_bytes(self) -> int:
        """Payload bytes shipped through shared memory."""
        return sum(segment.nbytes for segment in self._segments)

    def close(self) -> None:
        """Unlink every segment (idempotent)."""
        segments, self._segments = self._segments, []
        for segment in segments:
            segment.close()


def _attach_segment(spec: SharedRelationSpec) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without adopting its lifecycle.

    Attaching registers the segment with the resource tracker.  Under
    the ``fork`` start method (what :func:`_pool_context` prefers, and
    the only method on the Linux targets) workers share the parent's
    tracker process, so the duplicate registration is a set no-op and
    the parent's unlink balances it — nothing to undo here.  Only a
    *spawned* worker runs its own tracker; there the registration is
    unregistered again so the worker's tracker does not report (and try
    to clean) segments whose lifecycle the parent owns.
    """
    shm = shared_memory.SharedMemory(name=spec.shm_name)
    if (
        os.getpid() != spec.origin_pid
        and multiprocessing.current_process().name != "MainProcess"
        and _pool_context() is None
    ):
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm


# ---------------------------------------------------------------------------
# Task planning.
# ---------------------------------------------------------------------------


#: candidate-volume floor below which proximity joins skip task
#: formation and run the serial pipeline in-process: with fewer than
#: this many ``|A| * |B|`` candidate pairs the ε-expansion bookkeeping
#: costs more than the join.  Data-dependent only (never the worker
#: count), so two requests with equal cache keys always route the same
#: way — the service result-cache contract.
PROXIMITY_SERIAL_VOLUME = 64


def _proximity_runs_serial(
    relation_a: SpatialRelation, relation_b: SpatialRelation
) -> bool:
    """Tiny-relation fallback for the proximity predicates."""
    return len(relation_a) * len(relation_b) < PROXIMITY_SERIAL_VOLUME


def _partition_plan(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    grid: Tuple[int, int],
    config: JoinConfig,
) -> PartitionPlan:
    """Run the configured tile-formation strategy (grid or rtree)."""
    strategy = create_partitioner(
        config.partitioner, target_tasks=config.target_tasks
    )
    if config.predicate in ("distance", "knn"):
        return strategy.plan_proximity(relation_a, relation_b, grid, config)
    return strategy.plan(relation_a, relation_b, grid)


def plan_tile_tasks(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    grid: Tuple[int, int],
    config: JoinConfig,
) -> Tuple[List[TileTask], List[PartitionStats]]:
    """Decompose a join into picklable per-tile tasks (pickled slices).

    Returns the tasks (non-empty only, in the plan's dispatch order —
    tile-key order for the grid strategy, space-filling-curve order for
    the tree strategy) and a :class:`PartitionStats` shell for every
    plan entry in key order, with grid plans listing empty tiles at
    zero counts exactly as in the serial partitioned join.  The grid
    decomposition comes from the shared
    :func:`~repro.core.partition.plan_tile_indices`, so tile order and
    replication can never diverge from the serial path.
    """
    plan = _partition_plan(relation_a, relation_b, grid, config)
    objects_a = relation_a.objects
    objects_b = relation_b.objects

    tasks: List[TileTask] = []
    for key, idx_a, idx_b in plan.entries:
        if idx_a.size == 0 or idx_b.size == 0:
            continue
        tasks.append(
            TileTask(
                tile=key,
                name_a=relation_a.name,
                name_b=relation_b.name,
                objects_a=tuple(
                    (objects_a[i].oid, objects_a[i].polygon)
                    for i in idx_a.tolist()
                ),
                objects_b=tuple(
                    (objects_b[i].oid, objects_b[i].polygon)
                    for i in idx_b.tolist()
                ),
                space=plan.space_tuple,
                grid=plan.grid,
                config=config,
            )
        )
    return tasks, plan.partition_shells()


def _columnar_tasks_for_specs(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    grid: Tuple[int, int],
    config: JoinConfig,
    spec_a: SharedRelationSpec,
    spec_b: SharedRelationSpec,
) -> Tuple[List[ColumnarTileTask], List[PartitionStats]]:
    """Build the columnar tile tasks against already-shipped segments.

    Shared by the one-shot path (segments in a fresh
    :class:`ColumnarShipment`) and the session path (segments served
    from the :class:`~repro.core.session.JoinSession` cache) — one task
    format either way.
    """
    plan = _partition_plan(relation_a, relation_b, grid, config)
    tasks: List[ColumnarTileTask] = []
    for key, idx_a, idx_b in plan.entries:
        if idx_a.size == 0 or idx_b.size == 0:
            continue
        tasks.append(
            ColumnarTileTask(
                tile=key,
                spec_a=spec_a,
                spec_b=spec_b,
                idx_a=idx_a,
                idx_b=idx_b,
                space=plan.space_tuple,
                grid=plan.grid,
                config=config,
            )
        )
    return tasks, plan.partition_shells()


def plan_columnar_tile_tasks(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    grid: Tuple[int, int],
    config: JoinConfig,
) -> Tuple[List[ColumnarTileTask], List[PartitionStats], ColumnarShipment]:
    """Columnar decomposition: shared segments + per-task index arrays.

    Same task plan as :func:`plan_tile_tasks` (both delegate to the
    configured :class:`~repro.core.partition.Partitioner`), but each
    task references the relations' shared ring columns instead of
    carrying pickled object slices.  The caller owns the returned
    :class:`ColumnarShipment` and must :meth:`~ColumnarShipment.close`
    it once the outcomes are in — in a ``finally`` block.
    """
    shipment = ColumnarShipment((relation_a, relation_b))
    try:
        spec_a, spec_b = shipment.specs
        tasks, partitions = _columnar_tasks_for_specs(
            relation_a, relation_b, grid, config, spec_a, spec_b
        )
        return tasks, partitions, shipment
    except BaseException:
        shipment.close()
        raise


# ---------------------------------------------------------------------------
# Worker-side execution.
# ---------------------------------------------------------------------------


def _materialise(name: str, wire_objects: Sequence[WireObject]):
    """Rebuild a relation slice in the worker, preserving original oids."""
    return subrelation(
        name, [SpatialObject(oid, poly) for oid, poly in wire_objects]
    )


def _objects_from_columns(
    columns: RingColumns, indices: np.ndarray
) -> List[SpatialObject]:
    """Rebuild the indexed objects from mapped ring columns.

    Polygons copy their coordinates out of the columns (bit-identically,
    via :meth:`Polygon.from_normalized`), so the returned objects hold
    no references into the backing buffer.
    """
    return [
        SpatialObject(int(columns.oids[i]), unpack_polygon(columns, int(i)))
        for i in indices
    ]


def _materialise_columnar(
    spec: SharedRelationSpec, indices: np.ndarray
) -> SpatialRelation:
    """Rebuild a tile's relation slice from the shared ring columns.

    The segment mapping is released before the join runs (the rebuilt
    objects are copies, see :func:`_objects_from_columns`).
    """
    shm = _attach_segment(spec)
    columns = None
    try:
        columns = _column_views(
            shm.buf, spec.n_objects, spec.n_rings, spec.n_points
        )
        objects = _objects_from_columns(columns, indices)
    finally:
        del columns  # release the exported buffer before closing
        shm.close()
    return subrelation(spec.relation_name, objects)


def _finish_tile(task, rel_a, rel_b, start: float, refinement=None) -> TileOutcome:
    """Tile-local join + reference-tile de-duplication (both formats).

    The tile-local join runs with ``columnar=False``: its relation
    slices are freshly rebuilt per task, so eagerly packing per-tile
    columns would do approximation work for objects the tile's MBR join
    never emits, with zero reuse.  Incremental packing of just the
    candidate objects is the better representation here — the toggle is
    semantics-free, so results and stats are unaffected.

    ``refinement`` optionally injects a pre-built refinement step (the
    columnar wire format binds one to the mapped shared-memory ring
    columns so batched refinement reads the shipped geometry directly).
    """
    config = replace(task.config, workers=1, columnar=False)
    result = SpatialJoinProcessor(config).join(
        rel_a, rel_b, refinement=refinement
    )
    if task.grid is None:
        # Tree-guided tasks partition the candidate-pair space
        # disjointly (each object lives in exactly one leaf), so every
        # pair this task emits is owned by it — no reference-tile rule.
        owned = [
            (obj_a.oid, obj_b.oid) for obj_a, obj_b in result.pairs
        ]
    else:
        space = Rect(*task.space)
        nx, ny = task.grid
        owned = [
            (obj_a.oid, obj_b.oid)
            for obj_a, obj_b in result.pairs
            if owning_tile(obj_a.mbr, obj_b.mbr, space, nx, ny) == task.tile
        ]
    return TileOutcome(
        tile=task.tile,
        id_pairs=owned,
        stats=result.stats,
        elapsed_seconds=time.perf_counter() - start,
    )


def _finish_proximity_tile(task, rel_a, rel_b, start: float) -> TileOutcome:
    """Task-local proximity join (both wire formats, both predicates).

    Runs the per-task proximity pipeline directly (the serial
    :class:`SpatialJoinProcessor` proximity branch with the executor's
    deduplication hook).  For ε-expanded *grid* distance tasks
    (``task.space``/``task.grid`` set) the owning-task rule runs on the
    ε/2-**expanded** MBRs — the frame the replication used — and runs
    *before* any counter moves, so each global candidate is processed
    by exactly one task and the merged flow statistics equal the serial
    pipeline's; non-owned replicas only count into
    ``stats.dedup_dropped``.  Tree-guided distance tasks and every kNN
    task are disjoint by construction and need no hook.
    """
    from .proximity import distance_join_pipeline, knn_join_pipeline

    config = replace(task.config, workers=1, columnar=False)
    stats = MultiStepStats()
    if config.predicate == "distance":
        owns = None
        if task.grid is not None:
            space = Rect(*task.space)
            nx, ny = task.grid
            half = config.epsilon / 2.0
            tile = task.tile

            def owns(obj_a: SpatialObject, obj_b: SpatialObject) -> bool:
                return owning_tile(
                    obj_a.mbr.expand(half), obj_b.mbr.expand(half),
                    space, nx, ny,
                ) == tile

        pairs = list(
            distance_join_pipeline(rel_a, rel_b, config, stats, owns=owns)
        )
    else:
        pairs = list(knn_join_pipeline(rel_a, rel_b, config, stats))
    return TileOutcome(
        tile=task.tile,
        id_pairs=[(obj_a.oid, obj_b.oid) for obj_a, obj_b in pairs],
        stats=stats,
        elapsed_seconds=time.perf_counter() - start,
    )


def run_tile_task(task: TileTask) -> TileOutcome:
    """Execute one pickled-slice tile task (runs inside a worker).

    The local join is the ordinary multi-step pipeline with the task's
    engine configuration; de-duplication applies the reference-tile rule
    *in the worker*, so only owned pairs cross the process boundary.
    """
    start = time.perf_counter()
    rel_a = _materialise(task.name_a, task.objects_a)
    rel_b = _materialise(task.name_b, task.objects_b)
    if task.config.predicate in ("distance", "knn"):
        return _finish_proximity_tile(task, rel_a, rel_b, start)
    return _finish_tile(task, rel_a, rel_b, start)


def run_columnar_tile_task(task: ColumnarTileTask) -> TileOutcome:
    """Execute one columnar tile task (runs inside a worker).

    Identical join semantics to :func:`run_tile_task`; only the way the
    relation slices reach the worker differs.  With batched refinement
    configured (``exact_batch > 1``) the segments stay mapped through
    the join so the exact step consumes the shipped ring columns
    directly.  Proximity tasks run their own bound cascade — batched
    refinement is the intersection join's exact step, so they bypass it
    exactly as the serial proximity pipelines do.
    """
    start = time.perf_counter()
    if task.config.predicate in ("distance", "knn"):
        rel_a = _materialise_columnar(task.spec_a, task.idx_a)
        rel_b = _materialise_columnar(task.spec_b, task.idx_b)
        return _finish_proximity_tile(task, rel_a, rel_b, start)
    if task.config.exact_batch > 1:
        return _run_columnar_tile_refined(task, start)
    rel_a = _materialise_columnar(task.spec_a, task.idx_a)
    rel_b = _materialise_columnar(task.spec_b, task.idx_b)
    return _finish_tile(task, rel_a, rel_b, start)


def _run_columnar_tile_refined(task: ColumnarTileTask, start: float) -> TileOutcome:
    """Columnar tile task with batched refinement on the shipped columns.

    Keeps both shared segments mapped for the duration of the tile-local
    join and hands the engine a :class:`~repro.exact.refine.BatchedRefinement`
    whose :class:`~repro.exact.refine.RingGeometry` indexes the mapped
    column views — the exact step gathers vertex coordinates straight
    out of shared memory instead of re-deriving edges from the rebuilt
    polygons.  Every array the refinement caches is a copy, so all views
    are droppable (and the segments closable) as soon as the join ends.
    """
    from ..exact.refine import BatchedRefinement, RingGeometry

    segments = []
    refinement = None
    columns_a = columns_b = None
    try:
        shm_a = _attach_segment(task.spec_a)
        segments.append(shm_a)
        shm_b = _attach_segment(task.spec_b)
        segments.append(shm_b)
        spec_a, spec_b = task.spec_a, task.spec_b
        columns_a = _column_views(
            shm_a.buf, spec_a.n_objects, spec_a.n_rings, spec_a.n_points
        )
        columns_b = _column_views(
            shm_b.buf, spec_b.n_objects, spec_b.n_rings, spec_b.n_points
        )
        objects_a = _objects_from_columns(columns_a, task.idx_a)
        objects_b = _objects_from_columns(columns_b, task.idx_b)
        rel_a = subrelation(spec_a.relation_name, objects_a)
        rel_b = subrelation(spec_b.relation_name, objects_b)
        refinement = BatchedRefinement(
            task.config,
            RingGeometry(
                columns_a,
                {id(o): int(r) for o, r in zip(objects_a, task.idx_a)},
            ),
            RingGeometry(
                columns_b,
                {id(o): int(r) for o, r in zip(objects_b, task.idx_b)},
            ),
        )
        return _finish_tile(task, rel_a, rel_b, start, refinement=refinement)
    finally:
        if refinement is not None:
            refinement.release()
        del columns_a, columns_b  # release exported buffers before closing
        for shm in segments:
            shm.close()


def _pool_context():
    """Prefer fork (cheap, Linux default); fall back to the platform default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _warm_worker_kernels(backend: str) -> None:
    """Pool initializer: compile/exercise the kernel backend once per worker.

    Runs at worker start-up, before any tile task: with ``numba`` this
    triggers (or loads from the on-disk cache) the JIT compilation of
    every loop kernel exactly once per process, so no tile pays a
    first-call compile stall.  Harmless for the interpreted backends.
    The warm-up is recorded in :func:`repro.geometry.kernels.warm_events`
    so tests can assert it ran without timing anything.
    """
    warm_up(backend)


# ---------------------------------------------------------------------------
# Scheduling: how tile tasks reach the workers.
# ---------------------------------------------------------------------------


class TileExecutionError(RuntimeError):
    """A tile's worker raised; carries the tile index for attribution.

    ``pool.map`` used to lose which tile died — both schedulers now map
    every future back to its tile, so a crashing worker surfaces as
    ``TileExecutionError(tile=(i, j))`` with the original exception as
    ``cause`` (and ``__cause__``), while the shared segments are still
    unlinked by the caller's ``finally``.
    """

    def __init__(self, tile: Tuple[int, int], cause: BaseException):
        super().__init__(f"tile {tile} failed in worker: {cause!r}")
        self.tile = tile
        self.cause = cause


@dataclass
class DispatchReport:
    """How a scheduler actually ran one join's tile tasks."""

    scheduler: str
    dispatched: int = 0
    #: completions that overtook an earlier-dispatched, still-pending
    #: tile (structurally 0 under the static scheduler, which collects
    #: in dispatch order).
    steals: int = 0
    #: tile keys in outcome-arrival order.
    completion_order: List[Tuple[int, int]] = field(default_factory=list)


def _task_cost(task) -> int:
    """Candidate-volume proxy used for size-ordered dispatch."""
    if isinstance(task, ColumnarTileTask):
        return int(task.idx_a.size) * int(task.idx_b.size)
    return len(task.objects_a) * len(task.objects_b)


def _run_in_process(
    ordered: Sequence[object], runner: Callable, report: DispatchReport
) -> List[TileOutcome]:
    """workers=1: same tasks, in dispatch order, still through pickle.

    The single-worker path proves the IPC format without paying for a
    pool: each task and outcome round-trips through :mod:`pickle`.
    """
    outcomes = []
    for task in ordered:
        shipped = pickle.loads(pickle.dumps(task))
        try:
            outcome = runner(shipped)
        except Exception as exc:
            raise TileExecutionError(task.tile, exc) from exc
        outcomes.append(pickle.loads(pickle.dumps(outcome)))
        report.completion_order.append(task.tile)
    return outcomes


class Scheduler(ABC):
    """Dispatch strategy for tile tasks (see module docstring).

    A scheduler decides dispatch order and how outcomes are collected;
    it never affects results — the parent folds outcomes in tile-key
    order whatever arrives first.
    """

    #: scheduler name as used by ``JoinConfig.scheduler`` and the CLI.
    name: ClassVar[str] = "?"

    @abstractmethod
    def dispatch_order(self, tasks: Sequence[object]) -> List[object]:
        """The order in which tasks are handed to the pool."""

    @abstractmethod
    def collect(
        self,
        ordered: Sequence[object],
        runner: Callable,
        pool: ProcessPoolExecutor,
        report: DispatchReport,
    ) -> List[TileOutcome]:
        """Submit the ordered tasks and gather their outcomes."""

    def execute(
        self,
        tasks: Sequence[object],
        runner: Callable,
        pool: Optional[ProcessPoolExecutor],
    ) -> Tuple[List[TileOutcome], DispatchReport]:
        """Run the tasks on ``pool`` (or in-process when ``pool`` is None)."""
        ordered = self.dispatch_order(list(tasks))
        report = DispatchReport(scheduler=self.name, dispatched=len(ordered))
        if pool is None:
            return _run_in_process(ordered, runner, report), report
        return self.collect(ordered, runner, pool, report), report


class StaticScheduler(Scheduler):
    """Tile-key dispatch order, collected in dispatch order.

    The historical ``pool.map`` behaviour, kept as the differential
    baseline: deterministic dispatch, no dynamic balancing, zero steals
    by construction.
    """

    name = "static"

    def dispatch_order(self, tasks: Sequence[object]) -> List[object]:
        return list(tasks)

    def collect(self, ordered, runner, pool, report) -> List[TileOutcome]:
        futures = [(task.tile, pool.submit(runner, task)) for task in ordered]
        outcomes: List[TileOutcome] = []
        try:
            for tile, future in futures:
                try:
                    outcomes.append(future.result())
                except Exception as exc:
                    raise TileExecutionError(tile, exc) from exc
                report.completion_order.append(tile)
        finally:
            for _, future in futures:
                future.cancel()
        return outcomes


class StealingScheduler(Scheduler):
    """Largest-first dispatch, outcomes gathered as they complete.

    Tiles are submitted in descending candidate-volume order (an LPT
    heuristic: start the probable stragglers first) and idle workers
    pull the next pending tile from the pool's queue the moment they
    finish — work stealing at tile granularity.  On skewed grids this
    stops one hot tile from serialising the join's tail; on balanced
    grids it degenerates gracefully to the static behaviour.
    """

    name = "stealing"

    def dispatch_order(self, tasks: Sequence[object]) -> List[object]:
        # Stable sort: equal-cost tiles keep their tile-key order.
        return sorted(tasks, key=_task_cost, reverse=True)

    def collect(self, ordered, runner, pool, report) -> List[TileOutcome]:
        futures = {
            pool.submit(runner, task): (position, task.tile)
            for position, task in enumerate(ordered)
        }
        outcomes: List[TileOutcome] = []
        pending = set(range(len(ordered)))
        try:
            for future in as_completed(futures):
                position, tile = futures[future]
                try:
                    outcomes.append(future.result())
                except Exception as exc:
                    raise TileExecutionError(tile, exc) from exc
                if pending and min(pending) < position:
                    report.steals += 1
                pending.discard(position)
                report.completion_order.append(tile)
        finally:
            for future in futures:
                future.cancel()
        return outcomes


def create_scheduler(name: str) -> Scheduler:
    """Instantiate the scheduler selected by ``JoinConfig.scheduler``."""
    for cls in (StaticScheduler, StealingScheduler):
        if name == cls.name:
            return cls()
    raise ValueError(
        f"unknown scheduler {name!r}; expected one of {SCHEDULERS}"
    )


def _dispatch(
    tasks: Sequence[object],
    runner: Callable,
    n_workers: int,
    scheduler: Optional[Scheduler] = None,
    session=None,
    kernels: str = "numpy",
) -> Tuple[List[TileOutcome], DispatchReport]:
    """Run the tasks under the scheduler on a pool (or in-process).

    ``session`` supplies a persistent pool when given; otherwise a
    one-shot pool is created and torn down around the join.  Either
    pool pre-warms the resolved ``kernels`` backend in every worker at
    start-up (:func:`_warm_worker_kernels`).
    """
    scheduler = scheduler or StaticScheduler()
    if n_workers == 1 or not tasks:
        return scheduler.execute(tasks, runner, None)
    if session is not None:
        try:
            return scheduler.execute(
                tasks, runner, session.pool(n_workers, kernels=kernels)
            )
        except BaseException as exc:
            # A pool whose worker process died is unusable for every
            # later join; discard it so the session's next join forks a
            # fresh one (public-API detection — no reliance on the
            # executor's private broken flag).
            cause = getattr(exc, "cause", None)
            if isinstance(exc, BrokenExecutor) or isinstance(
                cause, BrokenExecutor
            ):
                session._discard_pool()
            raise
    with ProcessPoolExecutor(
        max_workers=min(n_workers, len(tasks)),
        mp_context=_pool_context(),
        initializer=_warm_worker_kernels,
        initargs=(kernels,),
    ) as pool:
        return scheduler.execute(tasks, runner, pool)


def parallel_partitioned_join(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    grid: Optional[Tuple[int, int]] = None,
    config: Optional[JoinConfig] = None,
    workers: Optional[int] = None,
    session=None,
    partitioner: Optional[str] = None,
) -> ParallelPartitionedJoinResult:
    """Partitioned multi-step join on a real process pool.

    ``workers`` overrides ``config.workers``, ``grid`` overrides
    ``config.grid`` and ``partitioner`` overrides ``config.partitioner``
    when given.  ``config.partitioner`` selects the tile-formation
    strategy (uniform grid tiles or tree-guided leaf-overlap tasks, see
    :mod:`repro.core.partition`); ``config.scheduler`` selects how the
    tasks reach the workers (static dispatch order or size-ordered work
    stealing, see module docstring).  Outcomes are folded in task-key
    order, so the merged output is deterministic regardless of which
    worker finishes first — for the grid strategy identical pairs,
    order, and merged statistics as the serial :func:`partitioned_join`
    on the same grid under every scheduler, and for the tree strategy
    identical across every worker count and scheduler (its task
    decomposition depends only on the relations).  ``config.columnar``
    selects the wire format; either format produces the same outcomes.

    ``session`` (or ``config.session``) runs the join inside a
    :class:`repro.core.session.JoinSession`: the worker pool persists
    across joins and shared segments are served from the session's
    fingerprint-keyed cache, so repeated joins of the same relations
    ship zero redundant bytes.  The segments are leased (pinned) for
    the duration of the join, so a byte-bounded session cache can never
    evict them mid-flight.  Without a session every resource is created
    and torn down around this one call.
    """
    config = config or JoinConfig()
    if workers is not None:
        config = replace(config, workers=workers)
    if partitioner is not None:
        config = replace(config, partitioner=partitioner)
    if session is None:
        session = config.session
    if session is not None:
        session._ensure_open()
    grid = config.grid if grid is None else validate_grid(grid)
    n_workers = config.workers
    scheduler = create_scheduler(config.scheduler)
    # Tasks ship the config to worker processes; a live session must
    # stay behind in the parent.  ``kernels`` is resolved here, once:
    # workers receive (and pre-warm) a concrete backend name instead of
    # each re-resolving "auto".
    resolved_kernels = resolve_backend(config.kernels)
    wire_config = (
        config if config.session is None else replace(config, session=None)
    )
    if wire_config.kernels != resolved_kernels:
        wire_config = replace(wire_config, kernels=resolved_kernels)

    if config.predicate in ("distance", "knn") and _proximity_runs_serial(
        relation_a, relation_b
    ):
        # Tiny-relation fallback: below PROXIMITY_SERIAL_VOLUME
        # candidate pairs the ε-aware task formation costs more than
        # the join itself, so both proximity predicates run the
        # dedicated serial pipeline (repro.core.proximity) as a single
        # in-process task.  The routing predicate depends only on the
        # relations — never on the worker count — so configs that
        # differ only in execution fields still produce byte-identical
        # results (the service cache contract).  Everything larger
        # flows through the ε-expanded partition plan below, with
        # workers=1 executing the same tasks in-process.
        start = time.perf_counter()
        serial = SpatialJoinProcessor(
            replace(wire_config, workers=1)
        ).join(relation_a, relation_b)
        if session is not None:
            session._note_join()
        return ParallelPartitionedJoinResult(
            pairs=serial.pairs,
            partitions=[],
            stats=serial.stats,
            workers=1,
            tile_tasks=0,
            elapsed_seconds=time.perf_counter() - start,
            wire_format="serial",
            scheduler=scheduler.name,
            partitioner=config.partitioner,
        )

    start = time.perf_counter()
    shipment: Optional[ColumnarShipment] = None
    lease = None
    shipped_bytes = reused_bytes = 0
    cache_hits = cache_misses = 0
    try:
        if config.columnar:
            runner: Callable = run_columnar_tile_task
            wire_format = "columnar-shm"
            if session is not None:
                lease = session.lease_segments((relation_a, relation_b))
                for segment, reused in zip(lease.segments, lease.reused):
                    if reused:
                        cache_hits += 1
                        reused_bytes += segment.nbytes
                    else:
                        cache_misses += 1
                        shipped_bytes += segment.nbytes
                tasks, partitions = _columnar_tasks_for_specs(
                    relation_a, relation_b, grid, wire_config,
                    lease.segments[0].spec, lease.segments[1].spec,
                )
            else:
                tasks, partitions, shipment = plan_columnar_tile_tasks(
                    relation_a, relation_b, grid, wire_config
                )
                shipped_bytes = shipment.total_bytes
                cache_misses = 2
        else:
            tasks, partitions = plan_tile_tasks(
                relation_a, relation_b, grid, wire_config
            )
            runner = run_tile_task
            wire_format = "pickled-slices"
        outcomes, report = _dispatch(
            tasks,
            runner,
            n_workers,
            scheduler=scheduler,
            session=session,
            kernels=resolved_kernels,
        )
    finally:
        if shipment is not None:
            shipment.close()
        if lease is not None:
            lease.release()

    # Deterministic merge: fold outcomes in tile-key order no matter
    # which worker finished first (the stealing scheduler completes out
    # of order by design).
    outcomes.sort(key=lambda outcome: outcome.tile)
    by_id_a = {obj.oid: obj for obj in relation_a}
    by_id_b = {obj.oid: obj for obj in relation_b}
    by_tile = {p.tile: p for p in partitions}
    pairs: List[Tuple[SpatialObject, SpatialObject]] = []
    merged = MultiStepStats()
    tile_seconds: Dict[Tuple[int, int], float] = {}
    for outcome in outcomes:
        pstats = by_tile[outcome.tile]
        pstats.candidate_pairs = outcome.stats.candidate_pairs
        pstats.output_pairs = len(outcome.id_pairs)
        merged.merge(outcome.stats)
        tile_seconds[outcome.tile] = outcome.elapsed_seconds
        pairs.extend(
            (by_id_a[oid_a], by_id_b[oid_b])
            for oid_a, oid_b in outcome.id_pairs
        )
    if config.predicate == "knn":
        # Tasks partition the left relation, so the task-key fold
        # groups neighbour lists by task; the serial pipeline emits
        # left objects in relation order.  A stable re-sort by left
        # position restores it exactly (each left object's whole top-k
        # comes from one task, already in ascending (distance, oid)
        # order), making the merged output byte-identical to the
        # serial pipeline's.
        position = {obj.oid: i for i, obj in enumerate(relation_a)}
        pairs.sort(key=lambda pair: position[pair[0].oid])
    if session is not None:
        session._note_join()
    return ParallelPartitionedJoinResult(
        pairs=pairs,
        partitions=partitions,
        stats=merged,
        workers=n_workers,
        tile_tasks=len(tasks),
        elapsed_seconds=time.perf_counter() - start,
        tile_seconds=tile_seconds,
        wire_format=wire_format,
        shared_payload_bytes=shipped_bytes,
        scheduler=scheduler.name,
        partitioner=config.partitioner,
        steal_count=report.steals,
        completion_order=list(report.completion_order),
        segment_cache_hits=cache_hits,
        segment_cache_misses=cache_misses,
        reused_payload_bytes=reused_bytes,
    )
