"""Real multi-process parallel execution of partitioned spatial joins.

:mod:`repro.core.parallel` *models* the paper's §6 CPU/I-O-parallelism
outlook with a deterministic LPT-scheduling simulator; this module runs
it for real.  The grid tiles produced by :mod:`repro.core.partition` are
shipped to a :class:`concurrent.futures.ProcessPoolExecutor`, joined
locally in each worker with the configured engine (streaming or
batched), de-duplicated with the same reference-tile rule as the serial
partitioned join, and merged back into one deterministic result.

Two wire formats carry a tile to its worker:

* **Columnar shared memory** (``JoinConfig(columnar=True)``, default) —
  the parent writes each relation's packed ring columns
  (:class:`repro.datasets.columnar.RingColumns`) into one
  :class:`multiprocessing.shared_memory.SharedMemory` segment, once per
  join.  A :class:`ColumnarTileTask` then pickles only the segment
  descriptors plus two per-tile index arrays; workers map the segments
  and gather their slice zero-copy, rebuilding polygons bit-identically
  via :meth:`Polygon.from_normalized`.  Replicated objects cost nothing
  extra on the wire (the columns ship once, indices are cheap), which
  removes the pickling cost that used to dominate small joins.
* **Pickled slices** (``columnar=False``, the legacy format) — each
  :class:`TileTask` carries its relation slices as ``(oid, polygon)``
  pairs; replicated objects are pickled once per tile they touch.

Either way the guarantees are the same:

* **Result transparency** — the merged pair list equals the serial
  partitioned join's (and therefore the plain multi-step join's up to
  order); tiles are merged in tile-key order, so the output order is
  byte-identical to :func:`repro.core.partition.partitioned_join`.
* **Stats transparency** — every worker returns its tile's full
  :class:`~repro.core.stats.MultiStepStats`; the parent folds them with
  the associative :meth:`MultiStepStats.merge`, so the merged counters
  equal the serial partitioned join's exactly.
* **Degenerate pool** — ``workers=1`` executes the identical task
  objects in-process but still round-trips each task and outcome
  through :mod:`pickle`, so the single-worker path proves the IPC
  format without paying for a pool.
* **Segment lifecycle** — shared segments are created before dispatch
  and unlinked in a ``finally`` block, so success, worker failure, and
  KeyboardInterrupt all leave ``/dev/shm`` clean
  (``tests/test_parallel_exec_shm.py`` enforces it;
  :func:`live_shared_segments` exposes the tracking set).

``tests/test_parallel_exec_equivalence.py`` is the differential suite
that enforces the transparency guarantees across engines, predicates,
and worker counts.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..datasets.columnar import RingColumns, unpack_polygon
from ..datasets.relations import SpatialObject, SpatialRelation
from ..geometry import Polygon, Rect
from .join import JoinConfig, SpatialJoinProcessor
from .partition import (
    PartitionedJoinResult,
    PartitionStats,
    owning_tile,
    plan_tile_buckets,
    plan_tile_indices,
    subrelation,
)
from .stats import MultiStepStats

#: ``(oid, polygon)`` — the wire format of one relation slice entry.
WireObject = Tuple[int, Polygon]


@dataclass(frozen=True)
class TileTask:
    """Picklable unit of work: one tile's local join (pickled slices).

    Carries everything a worker needs and nothing it does not: the two
    relation slices as ``(oid, polygon)`` pairs (cached approximations
    and TR*-trees are rebuilt in the worker — they are derived data),
    the tile key, the joint data space and grid shape for the
    reference-tile de-duplication, and the full :class:`JoinConfig`.
    """

    tile: Tuple[int, int]
    name_a: str
    name_b: str
    objects_a: Tuple[WireObject, ...]
    objects_b: Tuple[WireObject, ...]
    space: Tuple[float, float, float, float]
    grid: Tuple[int, int]
    config: JoinConfig


@dataclass(frozen=True)
class SharedRelationSpec:
    """Descriptor of one relation's ring columns in a shared segment.

    Everything a worker needs to remap the columns: the segment name and
    the three column lengths that fix the in-segment layout (see
    :func:`_column_views`).  ``origin_pid`` lets attachers distinguish
    the creating process (which keeps its resource-tracker registration)
    from workers (which must unregister theirs — the parent owns the
    unlink).
    """

    shm_name: str
    relation_name: str
    n_objects: int
    n_rings: int
    n_points: int
    origin_pid: int


@dataclass(frozen=True, eq=False)
class ColumnarTileTask:
    """Unit of work in the columnar wire format: descriptors + indices.

    Pickling this ships ~tens of bytes of segment descriptors plus two
    index arrays; the geometry itself travels through shared memory.
    """

    tile: Tuple[int, int]
    spec_a: SharedRelationSpec
    spec_b: SharedRelationSpec
    idx_a: np.ndarray
    idx_b: np.ndarray
    space: Tuple[float, float, float, float]
    grid: Tuple[int, int]
    config: JoinConfig


@dataclass
class TileOutcome:
    """What a worker sends back: owned pairs by oid, plus full stats."""

    tile: Tuple[int, int]
    id_pairs: List[Tuple[int, int]]
    stats: MultiStepStats
    elapsed_seconds: float


@dataclass
class ParallelPartitionedJoinResult(PartitionedJoinResult):
    """Serial-identical join result plus parallel-execution telemetry."""

    workers: int = 1
    tile_tasks: int = 0
    elapsed_seconds: float = 0.0
    #: per-tile wall-clock seconds measured inside the workers.
    tile_seconds: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: wire format used: "columnar-shm" or "pickled-slices".
    wire_format: str = "pickled-slices"
    #: bytes placed in shared memory (columnar wire format only).
    shared_payload_bytes: int = 0

    @property
    def busy_seconds(self) -> float:
        """Total worker-side join time (the parallelisable work)."""
        return sum(self.tile_seconds.values())


# ---------------------------------------------------------------------------
# Shared-memory segments for the columnar wire format.
# ---------------------------------------------------------------------------

#: names of segments created by this process and not yet unlinked.
_LIVE_SEGMENTS: Set[str] = set()


def live_shared_segments() -> frozenset:
    """Names of shared segments this process still owns (for tests)."""
    return frozenset(_LIVE_SEGMENTS)


def _column_views(buf, n_objects: int, n_rings: int, n_points: int) -> RingColumns:
    """Map the fixed segment layout back onto numpy column views.

    Layout (contiguous, all 8-byte items): oids ``int64[n]``,
    object_rings ``int64[n + 1]``, ring_offsets ``int64[n_rings + 1]``,
    ring_xy ``float64[n_points, 2]``.
    """
    offset = 0
    oids = np.ndarray((n_objects,), dtype=np.int64, buffer=buf, offset=offset)
    offset += 8 * n_objects
    object_rings = np.ndarray(
        (n_objects + 1,), dtype=np.int64, buffer=buf, offset=offset
    )
    offset += 8 * (n_objects + 1)
    ring_offsets = np.ndarray(
        (n_rings + 1,), dtype=np.int64, buffer=buf, offset=offset
    )
    offset += 8 * (n_rings + 1)
    ring_xy = np.ndarray(
        (n_points, 2), dtype=np.float64, buffer=buf, offset=offset
    )
    return RingColumns(oids, object_rings, ring_offsets, ring_xy)


def _segment_size(n_objects: int, n_rings: int, n_points: int) -> int:
    return 8 * ((n_objects) + (n_objects + 1) + (n_rings + 1) + 2 * n_points)


class ColumnarShipment:
    """Parent-side owner of the per-relation shared-memory segments.

    Creating the shipment copies each relation's packed ring columns
    into one segment; :meth:`close` unlinks them all.  Callers must
    close in a ``finally`` block — the lifecycle tests assert that no
    ``/dev/shm`` entry survives success, worker failure, or interrupt.
    """

    def __init__(self, relations: Sequence[SpatialRelation]):
        self.specs: List[SharedRelationSpec] = []
        self._segments: List[shared_memory.SharedMemory] = []
        try:
            for relation in relations:
                columns = relation.columnar().rings
                n = len(columns.oids)
                n_rings = len(columns.ring_offsets) - 1
                n_points = len(columns.ring_xy)
                shm = shared_memory.SharedMemory(
                    create=True,
                    size=max(8, _segment_size(n, n_rings, n_points)),
                )
                _LIVE_SEGMENTS.add(shm.name)
                self._segments.append(shm)
                views = _column_views(shm.buf, n, n_rings, n_points)
                views.oids[:] = columns.oids
                views.object_rings[:] = columns.object_rings
                views.ring_offsets[:] = columns.ring_offsets
                views.ring_xy[:] = columns.ring_xy
                del views
                self.specs.append(
                    SharedRelationSpec(
                        shm_name=shm.name,
                        relation_name=relation.name,
                        n_objects=n,
                        n_rings=n_rings,
                        n_points=n_points,
                        origin_pid=os.getpid(),
                    )
                )
        except BaseException:
            self.close()
            raise

    @property
    def segment_names(self) -> Tuple[str, ...]:
        return tuple(spec.shm_name for spec in self.specs)

    @property
    def total_bytes(self) -> int:
        """Payload bytes shipped through shared memory."""
        return sum(shm.size for shm in self._segments)

    def close(self) -> None:
        """Unlink every segment (idempotent)."""
        segments, self._segments = self._segments, []
        for shm in segments:
            try:
                shm.close()
            finally:
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
                _LIVE_SEGMENTS.discard(shm.name)


def _attach_segment(spec: SharedRelationSpec) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without adopting its lifecycle.

    Attaching registers the segment with the resource tracker.  Under
    the ``fork`` start method (what :func:`_pool_context` prefers, and
    the only method on the Linux targets) workers share the parent's
    tracker process, so the duplicate registration is a set no-op and
    the parent's unlink balances it — nothing to undo here.  Only a
    *spawned* worker runs its own tracker; there the registration is
    unregistered again so the worker's tracker does not report (and try
    to clean) segments whose lifecycle the parent owns.
    """
    shm = shared_memory.SharedMemory(name=spec.shm_name)
    if (
        os.getpid() != spec.origin_pid
        and multiprocessing.current_process().name != "MainProcess"
        and _pool_context() is None
    ):
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm


# ---------------------------------------------------------------------------
# Task planning.
# ---------------------------------------------------------------------------


def plan_tile_tasks(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    grid: Tuple[int, int],
    config: JoinConfig,
) -> Tuple[List[TileTask], List[PartitionStats]]:
    """Decompose a join into picklable per-tile tasks (pickled slices).

    Returns the tasks (non-empty tiles only, in tile-key order) and a
    :class:`PartitionStats` shell for *every* tile — empty tiles appear
    with zero counts, exactly as in the serial partitioned join.  The
    decomposition itself comes from the shared
    :func:`~repro.core.partition.plan_tile_indices`, so tile order and
    replication can never diverge from the serial path.
    """
    space, plan = plan_tile_buckets(relation_a, relation_b, grid)

    tasks: List[TileTask] = []
    partitions: List[PartitionStats] = []
    for key, objs_a, objs_b in plan:
        partitions.append(
            PartitionStats(tile=key, objects_a=len(objs_a),
                           objects_b=len(objs_b))
        )
        if not objs_a or not objs_b:
            continue
        tasks.append(
            TileTask(
                tile=key,
                name_a=relation_a.name,
                name_b=relation_b.name,
                objects_a=tuple((o.oid, o.polygon) for o in objs_a),
                objects_b=tuple((o.oid, o.polygon) for o in objs_b),
                space=(space.xmin, space.ymin, space.xmax, space.ymax),
                grid=grid,
                config=config,
            )
        )
    return tasks, partitions


def plan_columnar_tile_tasks(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    grid: Tuple[int, int],
    config: JoinConfig,
) -> Tuple[List[ColumnarTileTask], List[PartitionStats], ColumnarShipment]:
    """Columnar decomposition: shared segments + per-tile index arrays.

    Same tile plan as :func:`plan_tile_tasks` (both delegate to
    :func:`~repro.core.partition.plan_tile_indices`), but each task
    references the relations' shared ring columns instead of carrying
    pickled object slices.  The caller owns the returned
    :class:`ColumnarShipment` and must :meth:`~ColumnarShipment.close`
    it once the outcomes are in — in a ``finally`` block.
    """
    space, plan = plan_tile_indices(relation_a, relation_b, grid)
    shipment = ColumnarShipment((relation_a, relation_b))
    try:
        spec_a, spec_b = shipment.specs
        tasks: List[ColumnarTileTask] = []
        partitions: List[PartitionStats] = []
        for key, idx_a, idx_b in plan:
            partitions.append(
                PartitionStats(tile=key, objects_a=len(idx_a),
                               objects_b=len(idx_b))
            )
            if idx_a.size == 0 or idx_b.size == 0:
                continue
            tasks.append(
                ColumnarTileTask(
                    tile=key,
                    spec_a=spec_a,
                    spec_b=spec_b,
                    idx_a=idx_a,
                    idx_b=idx_b,
                    space=(space.xmin, space.ymin, space.xmax, space.ymax),
                    grid=grid,
                    config=config,
                )
            )
        return tasks, partitions, shipment
    except BaseException:
        shipment.close()
        raise


# ---------------------------------------------------------------------------
# Worker-side execution.
# ---------------------------------------------------------------------------


def _materialise(name: str, wire_objects: Sequence[WireObject]):
    """Rebuild a relation slice in the worker, preserving original oids."""
    return subrelation(
        name, [SpatialObject(oid, poly) for oid, poly in wire_objects]
    )


def _objects_from_columns(
    columns: RingColumns, indices: np.ndarray
) -> List[SpatialObject]:
    """Rebuild the indexed objects from mapped ring columns.

    Polygons copy their coordinates out of the columns (bit-identically,
    via :meth:`Polygon.from_normalized`), so the returned objects hold
    no references into the backing buffer.
    """
    return [
        SpatialObject(int(columns.oids[i]), unpack_polygon(columns, int(i)))
        for i in indices
    ]


def _materialise_columnar(
    spec: SharedRelationSpec, indices: np.ndarray
) -> SpatialRelation:
    """Rebuild a tile's relation slice from the shared ring columns.

    The segment mapping is released before the join runs (the rebuilt
    objects are copies, see :func:`_objects_from_columns`).
    """
    shm = _attach_segment(spec)
    columns = None
    try:
        columns = _column_views(
            shm.buf, spec.n_objects, spec.n_rings, spec.n_points
        )
        objects = _objects_from_columns(columns, indices)
    finally:
        del columns  # release the exported buffer before closing
        shm.close()
    return subrelation(spec.relation_name, objects)


def _finish_tile(task, rel_a, rel_b, start: float, refinement=None) -> TileOutcome:
    """Tile-local join + reference-tile de-duplication (both formats).

    The tile-local join runs with ``columnar=False``: its relation
    slices are freshly rebuilt per task, so eagerly packing per-tile
    columns would do approximation work for objects the tile's MBR join
    never emits, with zero reuse.  Incremental packing of just the
    candidate objects is the better representation here — the toggle is
    semantics-free, so results and stats are unaffected.

    ``refinement`` optionally injects a pre-built refinement step (the
    columnar wire format binds one to the mapped shared-memory ring
    columns so batched refinement reads the shipped geometry directly).
    """
    config = replace(task.config, workers=1, columnar=False)
    result = SpatialJoinProcessor(config).join(
        rel_a, rel_b, refinement=refinement
    )
    space = Rect(*task.space)
    nx, ny = task.grid
    owned = [
        (obj_a.oid, obj_b.oid)
        for obj_a, obj_b in result.pairs
        if owning_tile(obj_a.mbr, obj_b.mbr, space, nx, ny) == task.tile
    ]
    return TileOutcome(
        tile=task.tile,
        id_pairs=owned,
        stats=result.stats,
        elapsed_seconds=time.perf_counter() - start,
    )


def run_tile_task(task: TileTask) -> TileOutcome:
    """Execute one pickled-slice tile task (runs inside a worker).

    The local join is the ordinary multi-step pipeline with the task's
    engine configuration; de-duplication applies the reference-tile rule
    *in the worker*, so only owned pairs cross the process boundary.
    """
    start = time.perf_counter()
    rel_a = _materialise(task.name_a, task.objects_a)
    rel_b = _materialise(task.name_b, task.objects_b)
    return _finish_tile(task, rel_a, rel_b, start)


def run_columnar_tile_task(task: ColumnarTileTask) -> TileOutcome:
    """Execute one columnar tile task (runs inside a worker).

    Identical join semantics to :func:`run_tile_task`; only the way the
    relation slices reach the worker differs.  With batched refinement
    configured (``exact_batch > 1``) the segments stay mapped through
    the join so the exact step consumes the shipped ring columns
    directly.
    """
    start = time.perf_counter()
    if task.config.exact_batch > 1:
        return _run_columnar_tile_refined(task, start)
    rel_a = _materialise_columnar(task.spec_a, task.idx_a)
    rel_b = _materialise_columnar(task.spec_b, task.idx_b)
    return _finish_tile(task, rel_a, rel_b, start)


def _run_columnar_tile_refined(task: ColumnarTileTask, start: float) -> TileOutcome:
    """Columnar tile task with batched refinement on the shipped columns.

    Keeps both shared segments mapped for the duration of the tile-local
    join and hands the engine a :class:`~repro.exact.refine.BatchedRefinement`
    whose :class:`~repro.exact.refine.RingGeometry` indexes the mapped
    column views — the exact step gathers vertex coordinates straight
    out of shared memory instead of re-deriving edges from the rebuilt
    polygons.  Every array the refinement caches is a copy, so all views
    are droppable (and the segments closable) as soon as the join ends.
    """
    from ..exact.refine import BatchedRefinement, RingGeometry

    segments = []
    refinement = None
    columns_a = columns_b = None
    try:
        shm_a = _attach_segment(task.spec_a)
        segments.append(shm_a)
        shm_b = _attach_segment(task.spec_b)
        segments.append(shm_b)
        spec_a, spec_b = task.spec_a, task.spec_b
        columns_a = _column_views(
            shm_a.buf, spec_a.n_objects, spec_a.n_rings, spec_a.n_points
        )
        columns_b = _column_views(
            shm_b.buf, spec_b.n_objects, spec_b.n_rings, spec_b.n_points
        )
        objects_a = _objects_from_columns(columns_a, task.idx_a)
        objects_b = _objects_from_columns(columns_b, task.idx_b)
        rel_a = subrelation(spec_a.relation_name, objects_a)
        rel_b = subrelation(spec_b.relation_name, objects_b)
        refinement = BatchedRefinement(
            task.config,
            RingGeometry(
                columns_a,
                {id(o): int(r) for o, r in zip(objects_a, task.idx_a)},
            ),
            RingGeometry(
                columns_b,
                {id(o): int(r) for o, r in zip(objects_b, task.idx_b)},
            ),
        )
        return _finish_tile(task, rel_a, rel_b, start, refinement=refinement)
    finally:
        if refinement is not None:
            refinement.release()
        del columns_a, columns_b  # release exported buffers before closing
        for shm in segments:
            shm.close()


def _run_serial(tasks: Sequence[object], runner: Callable) -> List[TileOutcome]:
    """workers=1: same tasks, in-process, still through the wire format."""
    outcomes = []
    for task in tasks:
        shipped = pickle.loads(pickle.dumps(task))
        outcomes.append(pickle.loads(pickle.dumps(runner(shipped))))
    return outcomes


def _pool_context():
    """Prefer fork (cheap, Linux default); fall back to the platform default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _dispatch(
    tasks: Sequence[object], runner: Callable, n_workers: int
) -> List[TileOutcome]:
    """Run the tasks on a pool (or in-process for the degenerate case)."""
    if n_workers == 1 or not tasks:
        return _run_serial(tasks, runner)
    with ProcessPoolExecutor(
        max_workers=min(n_workers, len(tasks)),
        mp_context=_pool_context(),
    ) as pool:
        return list(pool.map(runner, tasks))


def parallel_partitioned_join(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    grid: Tuple[int, int] = (4, 4),
    config: Optional[JoinConfig] = None,
    workers: Optional[int] = None,
) -> ParallelPartitionedJoinResult:
    """Grid-partitioned multi-step join on a real process pool.

    ``workers`` overrides ``config.workers`` when given.  Tiles are
    dispatched with :meth:`ProcessPoolExecutor.map`, which preserves
    task order, so the merged output is deterministic regardless of
    which worker finishes first — identical pairs, order, and merged
    statistics as the serial :func:`partitioned_join` on the same grid.
    ``config.columnar`` selects the wire format (see module docstring);
    either format produces the same outcomes.
    """
    config = config or JoinConfig()
    if workers is not None:
        config = replace(config, workers=workers)
    n_workers = config.workers

    start = time.perf_counter()
    shipment: Optional[ColumnarShipment] = None
    shared_bytes = 0
    try:
        if config.columnar:
            tasks, partitions, shipment = plan_columnar_tile_tasks(
                relation_a, relation_b, grid, config
            )
            runner: Callable = run_columnar_tile_task
            wire_format = "columnar-shm"
            shared_bytes = shipment.total_bytes
        else:
            tasks, partitions = plan_tile_tasks(
                relation_a, relation_b, grid, config
            )
            runner = run_tile_task
            wire_format = "pickled-slices"
        outcomes = _dispatch(tasks, runner, n_workers)
    finally:
        if shipment is not None:
            shipment.close()

    by_id_a = {obj.oid: obj for obj in relation_a}
    by_id_b = {obj.oid: obj for obj in relation_b}
    by_tile = {p.tile: p for p in partitions}
    pairs: List[Tuple[SpatialObject, SpatialObject]] = []
    merged = MultiStepStats()
    tile_seconds: Dict[Tuple[int, int], float] = {}
    for outcome in outcomes:
        pstats = by_tile[outcome.tile]
        pstats.candidate_pairs = outcome.stats.candidate_pairs
        pstats.output_pairs = len(outcome.id_pairs)
        merged.merge(outcome.stats)
        tile_seconds[outcome.tile] = outcome.elapsed_seconds
        pairs.extend(
            (by_id_a[oid_a], by_id_b[oid_b])
            for oid_a, oid_b in outcome.id_pairs
        )
    return ParallelPartitionedJoinResult(
        pairs=pairs,
        partitions=partitions,
        stats=merged,
        workers=n_workers,
        tile_tasks=len(tasks),
        elapsed_seconds=time.perf_counter() - start,
        tile_seconds=tile_seconds,
        wire_format=wire_format,
        shared_payload_bytes=shared_bytes,
    )
