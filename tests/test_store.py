"""Persistent relation store: round-trips, corruption, stability, CLI.

Four concerns, one file:

* **Round-trip fidelity** — ``save`` then ``load`` reproduces every
  packed column byte-identically through read-only memmaps, and
  ``to_relation`` rebuilds the live geometry with the columnar cache
  pre-seeded (no packing kernel runs on load).
* **Corruption is a clean error** — every structural defect a disk can
  serve (unparsable manifest, wrong format version, missing keys,
  fingerprint mismatch, bogus counts, dtype/shape/nbytes drift,
  missing or truncated pages) raises :class:`StoreCorruptionError` at
  ``load``; silent byte flips that keep sizes intact are caught by
  :meth:`StoredRelation.verify`.
* **Fingerprint stability across processes** — the restart story only
  works if a *different* interpreter re-packs the same geometry to the
  same fingerprint and the same column bytes.  A subprocess proves it.
* **CLI and service fronts** — ``repro store pack/ls/rm``,
  ``join --store-dir`` with ``store:<fingerprint>`` references, and the
  server's ``warm``/``telemetry``/store-reference paths.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from helpers import random_relation_pair, stats_fingerprint
from repro.cli import main
from repro.core.join import JoinConfig, SpatialJoinProcessor
from repro.core.parallel_exec import live_shared_segments
from repro.core.session import JoinSession
from repro.datasets import (
    RelationStore,
    StoreCorruptionError,
    StoreMissError,
    StoreError,
)
from repro.datasets.io import save_relation
from repro.datasets.store import RING_COLUMNS, STORE_FORMAT_VERSION
from repro.service import JoinService, JoinServiceServer


@pytest.fixture()
def store(tmp_path):
    return RelationStore(tmp_path / "store")


@pytest.fixture()
def packed(store):
    """One relation saved to the store: (relation, fingerprint, store)."""
    rel_a, _ = random_relation_pair(81, n_objects=14)
    fingerprint = store.save(rel_a)
    return rel_a, fingerprint, store


def _manifest_path(store, fingerprint):
    return store.directory / fingerprint / "manifest.json"


def _edit_manifest(store, fingerprint, mutate):
    path = _manifest_path(store, fingerprint)
    manifest = json.loads(path.read_text())
    mutate(manifest)
    path.write_text(json.dumps(manifest))


class TestRoundTrip:
    def test_columns_come_back_byte_identical(self, packed):
        relation, fingerprint, store = packed
        columnar = relation.columnar()
        stored = store.load(fingerprint)

        assert stored.fingerprint == columnar.fingerprint == fingerprint
        assert stored.name == relation.name
        assert stored.n_objects == len(relation)

        rings = columnar.rings
        for name, original in (
            ("oids", rings.oids),
            ("object_rings", rings.object_rings),
            ("ring_offsets", rings.ring_offsets),
            ("ring_xy", rings.ring_xy),
            ("mbrs", columnar.mbrs),
            ("areas", columnar.areas),
        ):
            page = stored.column(name)
            assert isinstance(page, np.memmap)
            assert page.tobytes() == np.ascontiguousarray(original).tobytes()
        stored.verify()

    def test_to_relation_preseeds_columnar_without_repacking(self, packed):
        relation, fingerprint, store = packed
        loaded = store.load_relation(fingerprint)

        # The columnar cache is installed up front from the pages; no
        # packing kernel has run (pack counters exist only after packs).
        assert loaded._columnar is not None
        columnar = loaded.columnar()
        assert columnar.fingerprint == fingerprint
        assert columnar.pack_counts == {}

        # Geometry is bit-identical: same oids, same vertices.
        assert [o.oid for o in loaded] == [o.oid for o in relation]
        for mine, theirs in zip(loaded, relation):
            assert mine.polygon.shell == theirs.polygon.shell

        # And the loaded relation joins identically to the original.
        config = JoinConfig(exact_method="vectorized")
        original = SpatialJoinProcessor(config).join(relation, relation)
        replayed = SpatialJoinProcessor(config).join(loaded, loaded)
        assert sorted(replayed.id_pairs()) == sorted(original.id_pairs())
        assert stats_fingerprint(replayed.stats) == stats_fingerprint(
            original.stats
        )

    def test_save_is_idempotent_and_content_addressed(self, packed):
        relation, fingerprint, store = packed
        before = _manifest_path(store, fingerprint).stat().st_mtime_ns
        assert store.save(relation) == fingerprint
        assert _manifest_path(store, fingerprint).stat().st_mtime_ns == before
        assert len(store) == 1

        # Same geometry under a different relation name: new content
        # identity, new store entry.
        renamed = type(relation)("renamed", [])
        renamed.objects = relation.objects
        other = store.save(renamed)
        assert other != fingerprint
        assert sorted(store) == sorted([fingerprint, other])

    def test_management_surface(self, packed):
        relation, fingerprint, store = packed
        assert fingerprint in store
        assert store.fingerprints() == [fingerprint]
        assert store.remove(fingerprint) is True
        assert store.remove(fingerprint) is False
        assert fingerprint not in store
        assert len(store) == 0

    def test_miss_is_a_keyed_miss(self, store):
        with pytest.raises(StoreMissError) as excinfo:
            store.load("deadbeef" * 4)
        assert isinstance(excinfo.value, KeyError)
        assert isinstance(excinfo.value, StoreError)
        assert "not in store" in str(excinfo.value)


class TestCorruption:
    def test_unparsable_manifest(self, packed):
        _, fingerprint, store = packed
        _manifest_path(store, fingerprint).write_text("{not json")
        with pytest.raises(StoreCorruptionError, match="unreadable manifest"):
            store.load(fingerprint)

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda m: m.update(format_version=STORE_FORMAT_VERSION + 1),
             "format version"),
            (lambda m: m.pop("n_points"), "missing 'n_points'"),
            (lambda m: m.update(fingerprint="0" * 32),
             "does not match directory"),
            (lambda m: m.update(n_objects="many"), "non-negative integer"),
            (lambda m: m.update(n_rings=True), "non-negative integer"),
            (lambda m: m.update(n_points=-1), "non-negative integer"),
            (lambda m: m.update(columns=[]), "'columns' is not an object"),
            (lambda m: m["columns"].pop("ring_xy"), "missing or incomplete"),
            (lambda m: m["columns"]["oids"].pop("nbytes"),
             "missing or incomplete"),
            (lambda m: m["columns"]["oids"].update(dtype="<f8"), "dtype"),
            (lambda m: m["columns"]["areas"].update(
                shape=[m["n_objects"] + 1]), "disagrees with the manifest"),
            (lambda m: m["columns"]["ring_xy"].update(
                nbytes=m["columns"]["ring_xy"]["nbytes"] - 8),
             "disagrees with nbytes"),
        ],
        ids=[
            "format-version", "missing-count", "fingerprint-mismatch",
            "count-str", "count-bool", "count-negative", "columns-list",
            "column-missing", "column-incomplete", "dtype-drift",
            "shape-drift", "nbytes-drift",
        ],
    )
    def test_manifest_defects(self, packed, mutate, match):
        _, fingerprint, store = packed
        _edit_manifest(store, fingerprint, mutate)
        with pytest.raises(StoreCorruptionError, match=match):
            store.load(fingerprint)

    @pytest.mark.parametrize("column", ["ring_xy", "oids"])
    def test_truncated_page(self, packed, column):
        _, fingerprint, store = packed
        page = store.directory / fingerprint / f"{column}.bin"
        page.write_bytes(page.read_bytes()[:-8])
        with pytest.raises(StoreCorruptionError, match="truncated"):
            store.load(fingerprint)

    def test_missing_page(self, packed):
        _, fingerprint, store = packed
        (store.directory / fingerprint / "mbrs.bin").unlink()
        with pytest.raises(StoreCorruptionError, match="missing"):
            store.load(fingerprint)

    def test_oversized_page(self, packed):
        _, fingerprint, store = packed
        page = store.directory / fingerprint / "areas.bin"
        page.write_bytes(page.read_bytes() + b"\x00" * 8)
        with pytest.raises(StoreCorruptionError, match="oversized"):
            store.load(fingerprint)

    def test_verify_catches_size_preserving_byte_flips(self, packed):
        _, fingerprint, store = packed
        page = store.directory / fingerprint / "ring_xy.bin"
        raw = bytearray(page.read_bytes())
        raw[13] ^= 0xFF
        page.write_bytes(bytes(raw))
        stored = store.load(fingerprint)  # sizes still agree: load passes
        with pytest.raises(StoreCorruptionError, match="digest"):
            stored.verify()

    def test_warm_from_store_propagates_load_errors_cleanly(self, packed):
        _, fingerprint, store = packed
        page = store.directory / fingerprint / "ring_xy.bin"
        page.write_bytes(page.read_bytes()[:-8])
        with JoinSession() as session:
            with pytest.raises(StoreCorruptionError):
                session.warm_from_store(store, [fingerprint])
            assert session.cached_relations == 0
            assert session.stats()["store_loads"] == 0
        assert live_shared_segments() == frozenset()


class TestSubprocessStability:
    """The same geometry packs to the same fingerprint in any process."""

    def test_reload_in_subprocess_matches_fingerprint_and_bytes(
        self, packed, tmp_path
    ):
        relation, fingerprint, store = packed
        columnar = relation.columnar()
        parent = {
            "fingerprint": fingerprint,
            "digests": {
                name: hashlib.blake2b(
                    np.ascontiguousarray(array).tobytes(), digest_size=16
                ).hexdigest()
                for name, array in zip(RING_COLUMNS, columnar.rings)
            },
        }

        # The child materialises objects from the stored pages, then
        # re-packs them from scratch (fresh relation, no pre-seeded
        # cache) — the full cold-process path, digest included.
        script = (
            "import hashlib, json, sys\n"
            "import numpy as np\n"
            "from repro.datasets import RelationStore\n"
            "from repro.datasets.relations import SpatialRelation\n"
            "from repro.datasets.store import RING_COLUMNS\n"
            "store = RelationStore(sys.argv[1])\n"
            "loaded = store.load_relation(sys.argv[2])\n"
            "fresh = SpatialRelation(loaded.name, [])\n"
            "fresh.objects = loaded.objects\n"
            "columnar = fresh.columnar()\n"
            "print(json.dumps({\n"
            "    'fingerprint': columnar.fingerprint,\n"
            "    'digests': {\n"
            "        name: hashlib.blake2b(\n"
            "            np.ascontiguousarray(col).tobytes(), digest_size=16\n"
            "        ).hexdigest()\n"
            "        for name, col in zip(RING_COLUMNS, columnar.rings)\n"
            "    },\n"
            "}))\n"
        )
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script,
             str(store.directory), fingerprint],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert result.returncode == 0, result.stderr
        child = json.loads(result.stdout)
        assert child == parent


class TestStoreCLI:
    @pytest.fixture()
    def wkt_pair(self, tmp_path):
        rel_a, rel_b = random_relation_pair(55, n_objects=16,
                                            degenerate=False)
        path_a, path_b = tmp_path / "a.wkt", tmp_path / "b.wkt"
        save_relation(rel_a, path_a)
        save_relation(rel_b, path_b)
        return rel_a, rel_b, str(path_a), str(path_b)

    def test_pack_ls_rm(self, wkt_pair, tmp_path, capsys):
        rel_a, rel_b, path_a, path_b = wkt_pair
        store_dir = str(tmp_path / "store")

        assert main(["store", "pack", store_dir, path_a, path_b]) == 0
        out = capsys.readouterr().out
        assert out.count("packed ") == 2
        fp_a = rel_a.columnar().fingerprint
        fp_b = rel_b.columnar().fingerprint
        assert fp_a in out and fp_b in out

        assert main(["store", "ls", store_dir]) == 0
        out = capsys.readouterr().out
        assert "2 relations" in out
        assert fp_a in out and fp_b in out

        assert main(["store", "rm", store_dir, fp_a]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["store", "rm", store_dir, fp_a]) == 2
        assert "not in store" in capsys.readouterr().err

        assert main(["store", "ls", store_dir]) == 0
        assert "1 relations" in capsys.readouterr().out

    def test_ls_flags_corrupted_entries(self, wkt_pair, tmp_path, capsys):
        _, _, path_a, _ = wkt_pair
        store_dir = tmp_path / "store"
        assert main(["store", "pack", str(store_dir), path_a]) == 0
        capsys.readouterr()
        fingerprint = RelationStore(store_dir).fingerprints()[0]
        _edit_manifest(
            RelationStore(store_dir), fingerprint, lambda m: m.pop("columns")
        )
        assert main(["store", "ls", str(store_dir)]) == 0
        assert "CORRUPTED" in capsys.readouterr().out

    def test_pack_rejects_unreadable_relation(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.wkt")
        assert main(["store", "pack", str(tmp_path / "s"), missing]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_join_by_store_reference(self, wkt_pair, tmp_path, capsys):
        rel_a, rel_b, path_a, path_b = wkt_pair
        store_dir = str(tmp_path / "store")
        assert main(["store", "pack", store_dir, path_a, path_b]) == 0
        capsys.readouterr()
        fp_a = rel_a.columnar().fingerprint
        fp_b = rel_b.columnar().fingerprint

        oracle = SpatialJoinProcessor(
            JoinConfig(exact_method="vectorized")
        ).join(rel_a, rel_b)
        assert main([
            "join", f"store:{fp_a}", f"store:{fp_b}",
            "--store-dir", store_dir, "--exact", "vectorized",
        ]) == 0
        assert str(len(oracle.id_pairs())) in capsys.readouterr().out

    def test_store_reference_without_store_dir_fails(self, capsys):
        assert main(["join", "store:abc", "store:def"]) == 2
        assert "needs --store-dir" in capsys.readouterr().err

    def test_unknown_store_reference_fails(self, tmp_path, capsys):
        assert main([
            "join", "store:unknown", "store:unknown",
            "--store-dir", str(tmp_path / "s"),
        ]) == 2
        assert "not in store" in capsys.readouterr().err


class TestServiceStore:
    def _serve(self, test_body, **service_kwargs):
        async def drive():
            service = JoinService(**service_kwargs)
            server = JoinServiceServer(service, port=0)
            await server.start()
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            try:
                return await test_body(reader, writer)
            finally:
                writer.close()
                await server.close()

        return asyncio.run(drive())

    @staticmethod
    async def _rpc(reader, writer, payload):
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()
        return json.loads(await reader.readline())

    @pytest.fixture()
    def populated(self, tmp_path):
        rel_a, rel_b = random_relation_pair(77, n_objects=14,
                                            degenerate=False)
        store = RelationStore(tmp_path / "store")
        return store, rel_a, store.save(rel_a), rel_b, store.save(rel_b)

    def test_warm_then_join_by_fingerprint(self, populated):
        store, rel_a, fp_a, rel_b, fp_b = populated
        oracle = SpatialJoinProcessor(JoinConfig()).join(rel_a, rel_b)

        async def body(reader, writer):
            warm = await self._rpc(reader, writer, {"op": "warm"})
            join = await self._rpc(reader, writer, {
                "op": "join",
                "relation_a": f"store:{fp_a}",
                "relation_b": f"store:{fp_b}",
            })
            telemetry = await self._rpc(reader, writer, {"op": "telemetry"})
            return warm, join, telemetry

        warm, join, telemetry = self._serve(
            body, sessions=1, store_dir=str(store.directory)
        )
        assert warm == {
            "status": "ok", "op": "warm", "sessions": 1,
            "segments_loaded": 2, "segments_cached": 0,
            "fingerprints": sorted([fp_a, fp_b]),
        }
        assert join["status"] == "ok"
        assert sorted(tuple(p) for p in join["pairs"]) == sorted(
            oracle.id_pairs()
        )
        assert telemetry["store"] == {
            "dir": str(store.directory), "entries": 2,
        }
        sessions = telemetry["sessions"]
        assert sessions["store_loads"] == 2
        assert sessions["store_load_bytes"] > 0
        # The warmed segments made the join's lookups pure cache hits.
        assert sessions["segment_cache_hits"] >= 2
        assert sessions["segment_cache_misses"] == 0
        assert live_shared_segments() == frozenset()

    def test_warm_without_store_is_a_bad_request(self):
        async def body(reader, writer):
            return await self._rpc(reader, writer, {"op": "warm"})

        response = self._serve(body, sessions=1)
        assert response["status"] == "error"
        assert response["code"] == 400
        assert "no relation store" in response["error"]

    def test_warm_validates_payload(self, populated):
        store = populated[0]

        async def body(reader, writer):
            bad_type = await self._rpc(
                reader, writer, {"op": "warm", "fingerprints": "abc"}
            )
            bad_field = await self._rpc(
                reader, writer, {"op": "warm", "extra": 1}
            )
            return bad_type, bad_field

        bad_type, bad_field = self._serve(
            body, sessions=1, store_dir=str(store.directory)
        )
        assert bad_type["code"] == 400
        assert "list of strings" in bad_type["error"]
        assert bad_field["code"] == 400
        assert "unknown warm fields" in bad_field["error"]

    def test_unknown_store_reference_is_a_bad_request(self, populated):
        store = populated[0]

        async def body(reader, writer):
            return await self._rpc(reader, writer, {
                "op": "join",
                "relation_a": "store:doesnotexist",
                "relation_b": "store:doesnotexist",
            })

        response = self._serve(
            body, sessions=1, store_dir=str(store.directory)
        )
        assert response["status"] == "error"
        assert response["code"] == 400
        assert "not in store" in response["error"]

    def test_store_reference_without_store_is_a_bad_request(self):
        async def body(reader, writer):
            return await self._rpc(reader, writer, {
                "op": "join", "relation_a": "store:abc",
                "relation_b": "store:abc",
            })

        response = self._serve(body, sessions=1)
        assert response["status"] == "error"
        assert response["code"] == 400
        assert "--store-dir" in response["error"]
