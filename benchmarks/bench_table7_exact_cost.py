"""Table 7: cost of the exact intersection algorithms (weighted ops, ms).

Paper (per-pair cost in 10^-3 s):

    Europe A   quadratic 119.6/154.3   plane-sweep 9.9/10.9   TR* 0.7/1.0
    BW A       quadratic 2814/7488     plane-sweep 49.2/51.6  TR* 0.9/1.3

Headline: the quadratic test is out of the question, and the TR*-tree
beats the plane sweep by at least an order of magnitude.

As in the paper, candidates are what survives the geometric filter with
the 5-corner and MEC tests.  Per-pair costs are measured on a sample and
extrapolated to the full candidate set (the quadratic algorithm on the
527-vertex BW objects is exactly as infeasible as the paper says).
"""

from repro.approximations import approx_intersect
from repro.exact import (
    OperationCounter,
    polygons_intersect_planesweep,
    polygons_intersect_quadratic,
    polygons_intersect_trstar,
)

SERIES = ("Europe A", "BW A")
PAPER_PER_PAIR = {
    "Europe A": {"quadratic": (119.6, 154.3), "plane-sweep": (9.9, 10.9),
                 "TR*-tree": (0.7, 1.0)},
    "BW A": {"quadratic": (2814.7, 7487.8), "plane-sweep": (49.2, 51.6),
             "TR*-tree": (0.9, 1.3)},
}


def remaining_after_filter(pairs):
    """Candidates that survive the 5-C (false hits) and MEC (hits) tests."""
    remaining = []
    for obj_a, obj_b, hit in pairs:
        if not approx_intersect(
            obj_a.approximation("5-C"), obj_b.approximation("5-C")
        ):
            continue  # identified false hit
        if approx_intersect(
            obj_a.approximation("MEC"), obj_b.approximation("MEC")
        ):
            continue  # identified hit
        remaining.append((obj_a, obj_b, hit))
    return remaining


def per_pair_cost(sample, algorithm):
    """Average weighted cost (ms) over a pair sample."""
    if not sample:
        return 0.0
    counter = OperationCounter()
    for obj_a, obj_b in sample:
        algorithm(obj_a, obj_b, counter)
    return counter.cost_ms() / len(sample)


def quadratic(obj_a, obj_b, counter):
    return polygons_intersect_quadratic(obj_a.polygon, obj_b.polygon, counter)


def planesweep(obj_a, obj_b, counter):
    return polygons_intersect_planesweep(obj_a.polygon, obj_b.polygon, counter)


def trstar(obj_a, obj_b, counter):
    return polygons_intersect_trstar(obj_a.trstar(3), obj_b.trstar(3), counter)


def test_table7_exact_algorithm_cost(benchmark, scale, classified, report):
    lines = [
        f"{'series':>9} {'algorithm':>12} {'hit ms/pair':>12} "
        f"{'false ms/pair':>14} {'total ms':>10}"
    ]
    measured = {}
    for name in SERIES:
        remaining = remaining_after_filter(classified(name))
        hits = [(a, b) for a, b, h in remaining if h]
        falses = [(a, b) for a, b, h in remaining if not h]
        sample_n = scale.exact_sample
        quad_n = max(4, sample_n // 4)  # quadratic is brutally slow on BW
        algos = (
            ("quadratic", quadratic, quad_n),
            ("plane-sweep", planesweep, sample_n),
            ("TR*-tree", trstar, sample_n),
        )
        measured[name] = {}
        for label, fn, n in algos:
            hit_cost = per_pair_cost(hits[:n], fn)
            false_cost = per_pair_cost(falses[:n], fn)
            total = hit_cost * len(hits) + false_cost * len(falses)
            measured[name][label] = (hit_cost, false_cost, total)
            lines.append(
                f"{name:>9} {label:>12} {hit_cost:>12.1f} {false_cost:>14.1f} "
                f"{total:>10.0f}"
            )
            p = PAPER_PER_PAIR[name][label]
            lines.append(
                f"{'(paper)':>9} {label:>12} {p[0]:>12.1f} {p[1]:>14.1f} "
                f"{'':>10}"
            )
    report.table("Table 7", "cost of the exact intersection algorithms", lines)

    # Time one representative TR*-tree test.
    remaining = remaining_after_filter(classified("Europe A"))
    pair = next(((a, b) for a, b, h in remaining if h), None)
    if pair is not None:
        benchmark.pedantic(
            lambda: trstar(pair[0], pair[1], OperationCounter()),
            rounds=5,
            iterations=1,
        )

    for name in SERIES:
        m = measured[name]
        # Headline ordering: quadratic >> plane sweep > TR*-tree.
        assert m["quadratic"][2] > m["plane-sweep"][2] > m["TR*-tree"][2], m
        # TR* beats the sweep by a large factor (paper: >= one order of
        # magnitude; we require >= 4x to absorb data variation).
        assert m["plane-sweep"][2] / max(m["TR*-tree"][2], 1e-9) >= 4.0, m
