"""Tests for approximation-quality metrics and the false-area test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approximations import (
    compute_approximation,
    false_area,
    false_area_test,
    false_area_test_stored,
    mbr_based_false_area,
    normalized_false_area,
    area_extension,
    area_extension_ratio,
    progressive_coverage,
)
from repro.geometry import Polygon
from tests.conftest import square, star_polygon

stars = st.builds(
    star_polygon,
    n=st.integers(min_value=6, max_value=30),
    seed=st.integers(min_value=0, max_value=5000),
)

UNIT_SQUARE = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])


class TestFalseAreaMetrics:
    def test_mbr_of_square_has_zero_false_area(self):
        approx = compute_approximation(UNIT_SQUARE, "MBR")
        assert false_area(UNIT_SQUARE, approx) == pytest.approx(0.0, abs=1e-9)
        assert normalized_false_area(UNIT_SQUARE, approx) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_mbr_of_triangle(self):
        tri = Polygon([(0, 0), (2, 0), (0, 2)])
        approx = compute_approximation(tri, "MBR")
        # MBR area 4, triangle area 2 -> normalized false area 1.
        assert normalized_false_area(tri, approx) == pytest.approx(1.0)

    @given(stars, st.sampled_from(("MBR", "RMBR", "4-C", "5-C", "CH")))
    @settings(max_examples=40, deadline=None)
    def test_false_area_nonnegative_for_conservative(self, poly, kind):
        approx = compute_approximation(poly, kind)
        assert false_area(poly, approx) >= -1e-9

    @given(stars)
    @settings(max_examples=25, deadline=None)
    def test_mbr_based_false_area_at_most_plain(self, poly):
        """Clipping to the MBR can only reduce an approximation's false area."""
        for kind in ("RMBR", "5-C", "MBC", "MBE"):
            approx = compute_approximation(poly, kind)
            assert (
                mbr_based_false_area(poly, approx)
                <= normalized_false_area(poly, approx) + 1e-6
            )

    def test_mbr_based_equals_plain_for_mbr(self):
        poly = star_polygon(n=20, seed=11)
        approx = compute_approximation(poly, "MBR")
        assert mbr_based_false_area(poly, approx) == pytest.approx(
            normalized_false_area(poly, approx), abs=1e-9
        )


class TestAreaExtension:
    def test_mbr_extension_ratio_is_one(self):
        poly = star_polygon(n=18, seed=4)
        approx = compute_approximation(poly, "MBR")
        assert area_extension_ratio(poly, approx) == pytest.approx(1.0)

    @given(stars, st.sampled_from(("RMBR", "4-C", "5-C", "MBC", "MBE")))
    @settings(max_examples=30, deadline=None)
    def test_extension_ratio_at_least_one(self, poly, kind):
        """§3.4: all non-MBR approximations have higher area extension."""
        approx = compute_approximation(poly, kind)
        assert area_extension_ratio(poly, approx) >= 1.0 - 1e-9

    def test_area_extension_is_mbr_area(self):
        approx = compute_approximation(UNIT_SQUARE, "MBR")
        assert area_extension(approx) == pytest.approx(1.0)


class TestProgressiveCoverage:
    @given(stars)
    @settings(max_examples=25, deadline=None)
    def test_coverage_in_unit_interval(self, poly):
        for kind in ("MEC", "MER"):
            approx = compute_approximation(poly, kind)
            cov = progressive_coverage(poly, approx)
            assert 0.0 < cov <= 1.0 + 1e-9

    def test_square_mer_coverage_is_full(self):
        approx = compute_approximation(UNIT_SQUARE, "MER")
        assert progressive_coverage(UNIT_SQUARE, approx) == pytest.approx(
            1.0, abs=1e-3
        )


class TestFalseAreaTest:
    def test_proves_heavily_overlapping_squares(self):
        # Two identical squares: approximations equal the objects, so the
        # intersection area (1) exceeds fa1 + fa2 (0).
        s1 = square(0.5, 0.5, 0.5)
        s2 = square(0.5, 0.5, 0.5)
        a1 = compute_approximation(s1, "5-C")
        a2 = compute_approximation(s2, "5-C")
        assert false_area_test(s1, a1, s2, a2)

    def test_no_proof_for_disjoint(self):
        s1 = square(0.0, 0.0, 0.5)
        s2 = square(5.0, 5.0, 0.5)
        a1 = compute_approximation(s1, "MBR")
        a2 = compute_approximation(s2, "MBR")
        assert not false_area_test(s1, a1, s2, a2)

    @given(stars, stars)
    @settings(max_examples=40, deadline=None)
    def test_soundness_no_false_positives(self, p1, p2):
        """A false-area proof must imply actual object intersection."""
        from repro.geometry.fastops import polygons_intersect_fast

        for kind in ("MBR", "5-C", "CH"):
            a1 = compute_approximation(p1, kind)
            a2 = compute_approximation(p2, kind)
            if false_area_test(p1, a1, p2, a2):
                assert polygons_intersect_fast(p1, p2)

    def test_stored_variant_matches(self):
        p1 = star_polygon(0, 0, n=20, seed=1)
        p2 = star_polygon(0.3, 0.2, n=20, seed=2)
        a1 = compute_approximation(p1, "5-C")
        a2 = compute_approximation(p2, "5-C")
        direct = false_area_test(p1, a1, p2, a2)
        stored = false_area_test_stored(
            a1, a1.area() - p1.area(), a2, a2.area() - p2.area()
        )
        assert direct == stored
