"""Synthetic cartographic datasets and the paper's test series."""

from .columnar import ColumnarRelation, RingColumns, pack_rings, unpack_polygon
from .generators import (
    DATA_SPACE,
    cartographic_polygons,
    lognormal_vertex_targets,
    relation_statistics,
    roughen_ring,
    uniform_rect_items,
    voronoi_cells,
)
from .relations import (
    BW_PROFILE,
    EUROPE_PROFILE,
    SpatialObject,
    SpatialRelation,
    bw,
    clear_cache,
    europe,
)
from .testseries import TestSeries, canonical_series, strategy_a, strategy_b

__all__ = [
    "BW_PROFILE",
    "ColumnarRelation",
    "DATA_SPACE",
    "EUROPE_PROFILE",
    "RingColumns",
    "SpatialObject",
    "SpatialRelation",
    "pack_rings",
    "unpack_polygon",
    "TestSeries",
    "bw",
    "canonical_series",
    "cartographic_polygons",
    "clear_cache",
    "europe",
    "lognormal_vertex_targets",
    "relation_statistics",
    "roughen_ring",
    "strategy_a",
    "strategy_b",
    "uniform_rect_items",
    "voronoi_cells",
]
