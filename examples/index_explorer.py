"""Index explorer: R*-tree and TR*-tree behaviour under the I/O model.

Demonstrates the index substrate directly: build an R*-tree over a
relation, run point/window queries and a spatial join while counting
page accesses through an LRU buffer (the paper's §3.4 methodology), and
inspect a TR*-tree decomposition of a single complex polygon.

Run:  python examples/index_explorer.py
"""

from repro.datasets import europe, strategy_a
from repro.exact import trapezoid_decomposition
from repro.geometry import Rect
from repro.index import (
    AccessCounter,
    LRUBuffer,
    PageLayout,
    RStarTree,
    rstar_join,
)


def main() -> None:
    relation = europe(size=200)
    layout = PageLayout(page_size=4096, key_bytes=16, extra_leaf_bytes=40)
    print(
        f"page layout: {layout.page_size}B pages, "
        f"{layout.leaf_capacity()} leaf entries (MBR + 5-C + info), "
        f"{layout.directory_capacity()} directory entries"
    )

    tree = RStarTree(
        max_entries=layout.leaf_capacity(),
        directory_max=layout.directory_capacity(),
    )
    for rect, obj in relation.mbr_items():
        tree.insert(rect, obj)
    tree.check_invariants()
    print(
        f"R*-tree: {tree.size} entries, height {tree.height}, "
        f"{tree.node_count()} nodes ({tree.leaf_count()} leaves)\n"
    )

    buffer = LRUBuffer(layout.buffer_pages(128 * 1024))
    counter = AccessCounter(buffer=buffer)

    # Window queries of growing selectivity.
    print("window queries (128 KB LRU buffer):")
    for extent in (0.01, 0.05, 0.2):
        counter.reset()
        window = Rect(0.4, 0.4, 0.4 + extent, 0.4 + extent)
        found = tree.window_query(window, counter)
        print(
            f"  {extent:4.0%} window: {len(found):4d} objects, "
            f"{counter.node_visits:3d} node visits, "
            f"{counter.page_reads:3d} page reads"
        )

    # A spatial join against the shifted copy, with shared buffer.
    series = strategy_a(relation)
    other = RStarTree(
        max_entries=layout.leaf_capacity(),
        directory_max=layout.directory_capacity(),
    )
    for rect, obj in series.relation_b.mbr_items():
        other.insert(rect, obj)
    buffer.clear()
    ca = AccessCounter(buffer=buffer)
    cb = AccessCounter(buffer=buffer)
    pairs = sum(1 for _ in rstar_join(tree, other, ca, cb))
    print(
        f"\nMBR-join: {pairs} candidate pairs, "
        f"{ca.page_reads + cb.page_reads} page reads "
        f"({ca.node_visits + cb.node_visits} node visits, "
        f"{buffer.hits} buffer hits)"
    )

    # TR*-tree anatomy of the most complex object (paper Figure 15).
    complex_obj = max(relation, key=lambda o: o.polygon.num_vertices)
    traps = trapezoid_decomposition(complex_obj.polygon)
    trstar = complex_obj.trstar(max_entries=3)
    print(
        f"\nTR*-tree of the most complex object "
        f"({complex_obj.polygon.num_vertices} vertices):"
    )
    print(f"  trapezoids: {len(traps)} (area preserved: "
          f"{abs(sum(t.area() for t in traps) - complex_obj.polygon.area()) < 1e-9})")
    print(f"  tree height: {trstar.height}, nodes: {trstar.node_count()}, "
          f"M = {trstar.max_entries}")


if __name__ == "__main__":
    main()
