"""Affine point transforms used by the synthetic-data generator.

The test-series strategies of §3.1 shift (A) and shift+rotate+scale (B)
whole relations; these helpers apply the same transforms to raw point
lists before polygons are rebuilt.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .predicates import Coord


def translate(points: Sequence[Coord], dx: float, dy: float) -> List[Coord]:
    """Shift every point by ``(dx, dy)``."""
    return [(x + dx, y + dy) for x, y in points]


def rotate(points: Sequence[Coord], angle: float, origin: Coord) -> List[Coord]:
    """Rotate every point by ``angle`` radians around ``origin``."""
    ox, oy = origin
    cos_a = math.cos(angle)
    sin_a = math.sin(angle)
    out: List[Coord] = []
    for x, y in points:
        rx, ry = x - ox, y - oy
        out.append((ox + rx * cos_a - ry * sin_a, oy + rx * sin_a + ry * cos_a))
    return out


def scale(points: Sequence[Coord], factor: float, origin: Coord) -> List[Coord]:
    """Scale every point towards/away from ``origin`` by ``factor``."""
    ox, oy = origin
    return [(ox + (x - ox) * factor, oy + (y - oy) * factor) for x, y in points]
