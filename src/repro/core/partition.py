"""Partitioned spatial joins — the paper's §6 parallelism outlook.

The paper closes by naming CPU- and I/O-parallelism as future work.  This
module implements the standard spatial declustering that later became
PBSM-style partitioned joins: the data space is cut into a grid of
tiles, objects are replicated into every tile their MBR intersects, each
tile is joined independently (each tile's work could run on its own
processor/disk), and duplicates are avoided with the reference-point
rule — a candidate pair is reported only by the tile containing the
lower-left corner of the two MBRs' intersection rectangle.

Execution here is sequential; the per-tile work statistics quantify the
achievable parallel speedup (total work / slowest tile).  The grid
decomposition is a vectorized index computation over the relations'
columnar MBR columns (:func:`assign_tile_indices` /
:func:`plan_tile_indices` — masks built from exactly the comparisons of
:meth:`Rect.intersects`, so membership cannot diverge from the scalar
reference-tile rule); object-list facades (:func:`assign_to_tiles`,
:func:`plan_tile_buckets`) remain for callers that want materialised
slices.  The helpers (:func:`joint_space`, :func:`tile_rects`,
:func:`owning_tile`) are shared with the real multi-process executor in
:mod:`repro.core.parallel_exec`, which runs the same tiles on a
:class:`concurrent.futures.ProcessPoolExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.relations import SpatialObject, SpatialRelation
from ..geometry import Rect
from .join import JoinConfig, JoinResult, SpatialJoinProcessor
from .stats import MultiStepStats


@dataclass
class PartitionStats:
    """Work performed by one tile's local join."""

    tile: Tuple[int, int]
    objects_a: int = 0
    objects_b: int = 0
    candidate_pairs: int = 0
    output_pairs: int = 0

    @property
    def work(self) -> int:
        """Work proxy: candidate pairs examined by this tile."""
        return self.candidate_pairs


@dataclass
class PartitionedJoinResult:
    """Join result plus per-tile work breakdown."""

    pairs: List[Tuple[SpatialObject, SpatialObject]]
    partitions: List[PartitionStats]
    stats: MultiStepStats

    def __len__(self) -> int:
        return len(self.pairs)

    def id_pairs(self) -> List[Tuple[int, int]]:
        return [(a.oid, b.oid) for a, b in self.pairs]

    @property
    def total_work(self) -> int:
        return sum(p.work for p in self.partitions)

    @property
    def max_tile_work(self) -> int:
        return max((p.work for p in self.partitions), default=0)

    def parallel_speedup_bound(self) -> float:
        """Ideal speedup with one processor per tile (work balance)."""
        if self.max_tile_work == 0:
            return 1.0
        return self.total_work / self.max_tile_work


def partitioned_join(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    grid: Tuple[int, int] = (2, 2),
    config: Optional[JoinConfig] = None,
) -> PartitionedJoinResult:
    """Grid-partitioned multi-step join (results equal the plain join)."""
    config = config or JoinConfig()
    nx, ny = grid
    space, plan = plan_tile_indices(relation_a, relation_b, grid)

    # Tile-local joins pack incrementally (see parallel_exec._finish_tile
    # for the rationale); the relation-level columns still drive the
    # grid decomposition above.
    processor = SpatialJoinProcessor(replace(config, columnar=False))
    all_pairs: List[Tuple[SpatialObject, SpatialObject]] = []
    partitions: List[PartitionStats] = []
    merged = MultiStepStats()
    for key, idx_a, idx_b in plan:
        pstats = PartitionStats(
            tile=key, objects_a=len(idx_a), objects_b=len(idx_b)
        )
        partitions.append(pstats)
        if idx_a.size == 0 or idx_b.size == 0:
            continue
        sub_a = subrelation_from_indices(relation_a, idx_a)
        sub_b = subrelation_from_indices(relation_b, idx_b)
        result = processor.join(sub_a, sub_b)
        pstats.candidate_pairs = result.stats.candidate_pairs
        merged.merge(result.stats)
        for obj_a, obj_b in result.pairs:
            if owning_tile(obj_a.mbr, obj_b.mbr, space, nx, ny) == key:
                pstats.output_pairs += 1
                all_pairs.append((obj_a, obj_b))
    return PartitionedJoinResult(
        pairs=all_pairs, partitions=partitions, stats=merged
    )


def plan_tile_buckets(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    grid: Tuple[int, int],
) -> Tuple[
    Rect,
    List[Tuple[Tuple[int, int], List[SpatialObject], List[SpatialObject]]],
]:
    """The shared tile plan: ``(space, [(tile, objs_a, objs_b), ...])``.

    Object-list facade over :func:`plan_tile_indices` — kept for callers
    that want materialised ``SpatialObject`` lists (e.g. the legacy
    pickled-slice wire format).
    """
    space, plan = plan_tile_indices(relation_a, relation_b, grid)
    objs_a = relation_a.objects
    objs_b = relation_b.objects
    return space, [
        (key, [objs_a[i] for i in idx_a], [objs_b[i] for i in idx_b])
        for key, idx_a, idx_b in plan
    ]


def plan_tile_indices(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    grid: Tuple[int, int],
) -> Tuple[
    Rect,
    List[Tuple[Tuple[int, int], np.ndarray, np.ndarray]],
]:
    """The shared tile plan as index arrays into the relations' columns.

    ``(space, [(tile, idx_a, idx_b), ...])`` where the index arrays
    select each tile's objects out of ``relation.objects`` (and out of
    every column of ``relation.columnar()``).  Single source of truth
    for the grid decomposition consumed by the serial
    :func:`partitioned_join` and both wire formats of the multi-process
    executor (:mod:`repro.core.parallel_exec`) — one definition of tile
    order, replication, and which tiles exist, so the serial-vs-parallel
    byte-identity guarantee cannot drift.
    """
    nx, ny = grid
    if nx < 1 or ny < 1:
        raise ValueError(f"grid must be at least 1x1, got {grid}")
    space = joint_space(relation_a, relation_b)
    tiles = tile_rects(space, nx, ny)
    indices_a = assign_tile_indices(relation_a.columnar().mbrs, tiles)
    indices_b = assign_tile_indices(relation_b.columnar().mbrs, tiles)
    return space, [
        (key, indices_a[key], indices_b[key]) for key in tiles
    ]


def joint_space(
    relation_a: SpatialRelation, relation_b: SpatialRelation
) -> Rect:
    """Bounding rectangle of both relations (the partitioned data space).

    Computed as column-wise min/max over the relations' MBR columns —
    the same floats ``Rect.union_all`` over the per-object MBRs yields.
    """
    columns = [
        rel.columnar().mbrs for rel in (relation_a, relation_b) if len(rel)
    ]
    if not columns:
        return Rect(0, 0, 1, 1)
    mbrs = np.concatenate(columns)
    return Rect(
        float(mbrs[:, 0].min()),
        float(mbrs[:, 1].min()),
        float(mbrs[:, 2].max()),
        float(mbrs[:, 3].max()),
    )


def tile_rects(space: Rect, nx: int, ny: int) -> Dict[Tuple[int, int], Rect]:
    """The ``nx`` × ``ny`` grid tiles covering ``space``, keyed ``(i, j)``."""
    tiles = {}
    for i in range(nx):
        for j in range(ny):
            tiles[(i, j)] = Rect(
                space.xmin + space.width * i / nx,
                space.ymin + space.height * j / ny,
                space.xmin + space.width * (i + 1) / nx,
                space.ymin + space.height * (j + 1) / ny,
            )
    return tiles


def assign_tile_indices(
    mbrs: np.ndarray, tiles: Dict[Tuple[int, int], Rect]
) -> Dict[Tuple[int, int], np.ndarray]:
    """Replication as index arrays: rows of ``mbrs`` per intersected tile.

    Vectorized over the ``(n, 4)`` MBR columns; each tile's mask uses
    exactly the comparisons of :meth:`Rect.intersects` (closed
    rectangles), so membership can never diverge from the scalar rule
    that :func:`owning_tile` relies on.  Index arrays are ascending,
    i.e. objects keep their relation order inside every tile.
    """
    out: Dict[Tuple[int, int], np.ndarray] = {}
    if len(mbrs) == 0:
        empty = np.empty(0, dtype=np.intp)
        return {key: empty for key in tiles}
    xmin, ymin, xmax, ymax = mbrs.T
    for key, tile in tiles.items():
        mask = (
            (xmin <= tile.xmax)
            & (tile.xmin <= xmax)
            & (ymin <= tile.ymax)
            & (tile.ymin <= ymax)
        )
        out[key] = np.nonzero(mask)[0]
    return out


def assign_to_tiles(
    relation: SpatialRelation, tiles: Dict[Tuple[int, int], Rect]
) -> Dict[Tuple[int, int], List[SpatialObject]]:
    """Replicate every object into each tile its MBR intersects.

    Object-list facade over :func:`assign_tile_indices` (tiles that
    receive no objects are absent, as before).
    """
    index_map = assign_tile_indices(relation.columnar().mbrs, tiles)
    objects = relation.objects
    return {
        key: [objects[i] for i in idx]
        for key, idx in index_map.items()
        if idx.size
    }


class _SubRelation(SpatialRelation):
    """A view over existing SpatialObjects (shares their caches)."""

    def __init__(self, name: str, objects: List[SpatialObject]):
        self.name = name
        self.objects = objects


def subrelation(name: str, objects: List[SpatialObject]) -> SpatialRelation:
    """A relation view over existing objects, keeping their oids intact."""
    return _SubRelation(name, objects)


def subrelation_from_indices(
    relation: SpatialRelation, indices: Sequence[int]
) -> SpatialRelation:
    """A relation view selected by index array (rows of the columns)."""
    objects = relation.objects
    return _SubRelation(relation.name, [objects[i] for i in indices])


def owning_tile(
    mbr_a: Rect, mbr_b: Rect, space: Rect, nx: int, ny: int
) -> Tuple[int, int]:
    """Duplicate avoidance: the tile owning the pair's reference point.

    The reference point is the lower-left corner of the intersection of
    the two MBRs; mapping it to a tile index assigns every qualifying
    pair to exactly one tile.
    """
    inter = mbr_a.intersection(mbr_b)
    if inter is None:
        return (-1, -1)
    ix = int((inter.xmin - space.xmin) / space.width * nx) if space.width else 0
    iy = int((inter.ymin - space.ymin) / space.height * ny) if space.height else 0
    return (min(nx - 1, max(0, ix)), min(ny - 1, max(0, iy)))
