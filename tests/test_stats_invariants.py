"""Counter invariants of ``MultiStepStats`` — locked in for both engines.

After any completed join: every MBR-join candidate is classified exactly
once (``filter_hits + filter_false_hits + remaining_candidates ==
candidate_pairs``), every remaining candidate gets exactly one exact
test (``exact_tests == remaining_candidates``), and the buffer
page-access counters only ever grow.  ``MultiStepStats.merge`` must be
an associative, commutative fold with the empty stats as identity, so
per-tile statistics can be aggregated in any order — the property the
multi-process tile executor relies on.
"""

from __future__ import annotations

import random

import pytest

from helpers import random_relation_pair, stats_fingerprint
from repro.core import FilterConfig, JoinConfig, SpatialJoinProcessor
from repro.core.stats import MultiStepStats
from repro.exact.costmodel import EDGE_INTERSECTION, TRAPEZOID_INTERSECTION
from repro.index import LRUBuffer

ENGINES = ("streaming", "batched")

CONFIGS = [
    JoinConfig(exact_method="vectorized"),
    JoinConfig(
        filter=FilterConfig(conservative=None, progressive=None),
        exact_method="vectorized",
    ),
    JoinConfig(
        filter=FilterConfig(conservative="MBC", progressive="MEC",
                            use_false_area_test=True),
        exact_method="vectorized",
    ),
    JoinConfig(exact_method="vectorized", predicate="within"),
]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("cfg_index", range(len(CONFIGS)))
def test_flow_conservation_after_join(engine, cfg_index):
    from dataclasses import replace

    config = replace(CONFIGS[cfg_index], engine=engine, batch_size=32)
    rel_a, rel_b = random_relation_pair(cfg_index + 50)
    stats = SpatialJoinProcessor(config).join(rel_a, rel_b).stats
    stats.check_invariants()
    assert (
        stats.filter_hits + stats.filter_false_hits + stats.exact_tests
        == stats.candidate_pairs
    )
    assert stats.exact_tests == stats.remaining_candidates
    assert stats.identified_pairs + stats.remaining_candidates == (
        stats.candidate_pairs
    )


def _random_valid_stats(rng: random.Random) -> MultiStepStats:
    """Random stats satisfying the Figure-1 flow invariants."""
    stats = MultiStepStats()
    stats.filter_hits_progressive = rng.randint(0, 50)
    stats.filter_hits_false_area = rng.randint(0, 10)
    stats.filter_false_hits = rng.randint(0, 50)
    stats.exact_hits = rng.randint(0, 30)
    stats.exact_false_hits = rng.randint(0, 30)
    stats.remaining_candidates = stats.exact_hits + stats.exact_false_hits
    stats.candidate_pairs = (
        stats.filter_hits + stats.filter_false_hits
        + stats.remaining_candidates
    )
    stats.mbr_join.output_pairs = stats.candidate_pairs
    stats.mbr_join.mbr_tests = stats.candidate_pairs + rng.randint(0, 100)
    stats.mbr_join.node_pairs = rng.randint(0, 20)
    stats.conservative_tests = rng.randint(0, stats.candidate_pairs)
    stats.progressive_tests = rng.randint(0, stats.candidate_pairs)
    stats.false_area_tests = rng.randint(0, 10)
    stats.exact_ops.count(EDGE_INTERSECTION, rng.randint(0, 500))
    if rng.random() < 0.5:
        stats.exact_ops.count(TRAPEZOID_INTERSECTION, rng.randint(1, 80))
    stats.check_invariants()
    return stats


class TestMerge:
    def test_merge_is_commutative(self):
        rng = random.Random(71)
        for _ in range(20):
            a, b = _random_valid_stats(rng), _random_valid_stats(rng)
            ab = MultiStepStats.merged([a, b])
            ba = MultiStepStats.merged([b, a])
            assert stats_fingerprint(ab) == stats_fingerprint(ba)
            assert ab.mbr_join.node_pairs == ba.mbr_join.node_pairs

    def test_merge_is_associative(self):
        rng = random.Random(72)
        for _ in range(20):
            a, b, c = (_random_valid_stats(rng) for _ in range(3))
            left = MultiStepStats.merged([MultiStepStats.merged([a, b]), c])
            right = MultiStepStats.merged([a, MultiStepStats.merged([b, c])])
            assert stats_fingerprint(left) == stats_fingerprint(right)

    def test_empty_stats_is_merge_identity(self):
        rng = random.Random(73)
        stats = _random_valid_stats(rng)
        fingerprint = stats_fingerprint(stats)
        merged = MultiStepStats.merged([MultiStepStats(), stats])
        assert stats_fingerprint(merged) == fingerprint
        merged.merge(MultiStepStats())
        assert stats_fingerprint(merged) == fingerprint

    def test_merge_returns_self_and_mutates_in_place(self):
        target = MultiStepStats()
        other = MultiStepStats()
        other.candidate_pairs = other.mbr_join.output_pairs = 3
        other.remaining_candidates = other.exact_hits = 3
        assert target.merge(other) is target
        assert target.candidate_pairs == 3
        # The source is never mutated by a merge.
        assert other.candidate_pairs == 3

    def test_invariants_hold_on_any_merge_of_valid_parts(self):
        rng = random.Random(74)
        for _ in range(10):
            parts = [
                _random_valid_stats(rng)
                for _ in range(rng.randint(1, 6))
            ]
            merged = MultiStepStats.merged(parts)
            merged.check_invariants()
            assert merged.candidate_pairs == sum(
                p.candidate_pairs for p in parts
            )
            assert merged.exact_ops.total_operations() == sum(
                p.exact_ops.total_operations() for p in parts
            )

    def test_merged_tile_stats_equal_partitioned_join_stats(self):
        """Folding real per-tile worker stats reproduces the serial sum."""
        from repro.core import partitioned_join, plan_tile_tasks, run_tile_task

        rel_a, rel_b = random_relation_pair(61)
        config = JoinConfig(exact_method="vectorized")
        serial = partitioned_join(rel_a, rel_b, grid=(3, 3), config=config)
        tasks, _ = plan_tile_tasks(rel_a, rel_b, (3, 3), config)
        merged = MultiStepStats.merged(
            run_tile_task(task).stats for task in tasks
        )
        assert stats_fingerprint(merged) == stats_fingerprint(serial.stats)
        merged.check_invariants()


def test_check_invariants_catches_leaks():
    stats = MultiStepStats()
    stats.candidate_pairs = 3
    stats.filter_false_hits = 1
    stats.remaining_candidates = 1  # one candidate unaccounted for
    with pytest.raises(AssertionError, match="leak"):
        stats.check_invariants()


class _RecordingBuffer(LRUBuffer):
    """LRU buffer that snapshots its counters after every access."""

    def __init__(self, capacity_pages):
        super().__init__(capacity_pages)
        self.snapshots = []

    def access(self, page_id):
        hit = super().access(page_id)
        self.snapshots.append((self.hits, self.misses, self.accesses))
        return hit


@pytest.mark.parametrize("engine", ENGINES)
def test_buffer_page_counters_monotone(engine, monkeypatch):
    """hits/misses/accesses never decrease while a join runs."""
    import repro.engine.base as engine_base

    buffers = []

    def capture(capacity_pages):
        buf = _RecordingBuffer(capacity_pages)
        buffers.append(buf)
        return buf

    monkeypatch.setattr(engine_base, "LRUBuffer", capture)
    rel_a, rel_b = random_relation_pair(9)
    config = JoinConfig(
        exact_method="vectorized", buffer_pages=4, engine=engine,
        batch_size=16,
    )
    SpatialJoinProcessor(config).join(rel_a, rel_b)

    assert buffers, "join with buffer_pages must allocate an LRU buffer"
    for buf in buffers:
        assert buf.snapshots, "buffer never accessed"
        prev = (0, 0, 0)
        for snap in buf.snapshots:
            hits, misses, accesses = snap
            assert accesses == hits + misses
            assert snap >= prev, f"counter went backwards: {prev} -> {snap}"
            assert accesses == prev[2] + 1, "exactly one access per visit"
            prev = snap


@pytest.mark.parametrize("engine", ENGINES)
def test_buffer_accounting_identical_across_engines(engine):
    """Total page reads with a buffer are engine-independent."""
    from dataclasses import replace

    rel_a, rel_b = random_relation_pair(13)
    base = JoinConfig(exact_method="vectorized", buffer_pages=4)
    result = SpatialJoinProcessor(
        replace(base, engine=engine, batch_size=16)
    ).join(rel_a, rel_b)
    reference = SpatialJoinProcessor(base).join(rel_a, rel_b)
    assert result.stats.mbr_join.node_pairs == (
        reference.stats.mbr_join.node_pairs
    )
    assert result.id_pairs() == reference.id_pairs()
