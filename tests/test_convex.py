"""Tests for convex-geometry operations (hull, SAT, clipping, calipers)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    convex_area,
    convex_contains_point,
    convex_hull,
    convex_intersect,
    convex_intersection_area,
    is_ccw,
    min_area_rotated_rect,
)

# Coordinates are quantised: the geometry kernel's predicates use an
# absolute epsilon tuned for unit-scale cartographic data (documented in
# repro.geometry.predicates), so sub-epsilon coordinate differences are
# out of scope.
coords = st.floats(min_value=-10, max_value=10, allow_nan=False).map(
    lambda v: round(v, 4)
)
points = st.tuples(coords, coords)
point_sets = st.lists(points, min_size=3, max_size=40)


class TestConvexHull:
    def test_square_with_interior_point(self):
        hull = convex_hull([(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)])
        assert len(hull) == 4
        assert (0.5, 0.5) not in hull

    def test_collinear_input(self):
        hull = convex_hull([(0, 0), (1, 1), (2, 2)])
        assert len(hull) == 2

    def test_single_point(self):
        assert convex_hull([(1, 1), (1, 1)]) == [(1.0, 1.0)]

    @given(point_sets)
    @settings(max_examples=60)
    def test_hull_contains_all_points(self, pts):
        hull = convex_hull(pts)
        if len(hull) < 3:
            return
        assert is_ccw(hull)
        for p in pts:
            assert convex_contains_point(hull, p)

    @given(point_sets)
    @settings(max_examples=40)
    def test_hull_is_convex(self, pts):
        from repro.geometry import cross

        hull = convex_hull(pts)
        n = len(hull)
        if n < 3:
            return
        for i in range(n):
            assert (
                cross(hull[i], hull[(i + 1) % n], hull[(i + 2) % n]) > -1e-9
            )


class TestConvexIntersect:
    SQ1 = [(0, 0), (1, 0), (1, 1), (0, 1)]

    def test_overlapping(self):
        sq2 = [(0.5, 0.5), (1.5, 0.5), (1.5, 1.5), (0.5, 1.5)]
        assert convex_intersect(self.SQ1, sq2)

    def test_touching_edge(self):
        sq2 = [(1, 0), (2, 0), (2, 1), (1, 1)]
        assert convex_intersect(self.SQ1, sq2)

    def test_disjoint(self):
        sq2 = [(2, 2), (3, 2), (3, 3), (2, 3)]
        assert not convex_intersect(self.SQ1, sq2)

    def test_contained(self):
        inner = [(0.4, 0.4), (0.6, 0.4), (0.6, 0.6), (0.4, 0.6)]
        assert convex_intersect(self.SQ1, inner)

    def test_cross_shape(self):
        # Neither polygon contains a vertex of the other.
        horizontal = [(-1, 0.4), (2, 0.4), (2, 0.6), (-1, 0.6)]
        vertical = [(0.4, -1), (0.6, -1), (0.6, 2), (0.4, 2)]
        assert convex_intersect(horizontal, vertical)

    @given(point_sets, point_sets)
    @settings(max_examples=50)
    def test_symmetric(self, pts1, pts2):
        h1, h2 = convex_hull(pts1), convex_hull(pts2)
        assert convex_intersect(h1, h2) == convex_intersect(h2, h1)

    @given(point_sets, point_sets)
    @settings(max_examples=50)
    def test_consistent_with_intersection_area(self, pts1, pts2):
        h1, h2 = convex_hull(pts1), convex_hull(pts2)
        if len(h1) < 3 or len(h2) < 3:
            return
        area = convex_intersection_area(h1, h2)
        if area > 1e-9:
            assert convex_intersect(h1, h2)


class TestClipping:
    def test_half_overlap(self):
        sq1 = [(0, 0), (1, 0), (1, 1), (0, 1)]
        sq2 = [(0.5, 0), (1.5, 0), (1.5, 1), (0.5, 1)]
        assert convex_intersection_area(sq1, sq2) == pytest.approx(0.5)

    def test_contained_returns_inner_area(self):
        sq1 = [(0, 0), (1, 0), (1, 1), (0, 1)]
        inner = [(0.25, 0.25), (0.75, 0.25), (0.75, 0.75), (0.25, 0.75)]
        assert convex_intersection_area(sq1, inner) == pytest.approx(0.25)

    def test_disjoint_zero(self):
        sq1 = [(0, 0), (1, 0), (1, 1), (0, 1)]
        sq2 = [(5, 5), (6, 5), (6, 6), (5, 6)]
        assert convex_intersection_area(sq1, sq2) == 0.0

    @given(point_sets, point_sets)
    @settings(max_examples=40)
    def test_intersection_area_bounded(self, pts1, pts2):
        h1, h2 = convex_hull(pts1), convex_hull(pts2)
        if len(h1) < 3 or len(h2) < 3:
            return
        area = convex_intersection_area(h1, h2)
        assert -1e-9 <= area <= min(convex_area(h1), convex_area(h2)) + 1e-6


class TestRotatedRect:
    def test_axis_aligned_square(self):
        corners, area, _angle = min_area_rotated_rect(
            [(0, 0), (1, 0), (1, 1), (0, 1)]
        )
        assert area == pytest.approx(1.0)
        assert len(corners) == 4

    def test_rotated_rectangle_recovered(self):
        # A 2x1 rectangle rotated by 30 degrees: the minimal rotated rect
        # has area 2, beating the axis-aligned MBR.
        base = [(0, 0), (2, 0), (2, 1), (0, 1)]
        ang = math.radians(30)
        rot = [
            (x * math.cos(ang) - y * math.sin(ang), x * math.sin(ang) + y * math.cos(ang))
            for x, y in base
        ]
        _corners, area, _angle = min_area_rotated_rect(rot)
        assert area == pytest.approx(2.0, rel=1e-6)

    @given(point_sets)
    @settings(max_examples=40)
    def test_covers_points_and_beats_nothing(self, pts):
        hull = convex_hull(pts)
        if len(hull) < 3:
            return
        corners, area, _ = min_area_rotated_rect(pts)
        # Rotated MBR must contain every point (tolerance for rotation noise).
        from repro.geometry import Rect

        for p in pts:
            assert convex_contains_point(_ccw(corners), p) or _near_boundary(
                corners, p
            )
        # And can never beat the hull area.
        assert area >= convex_area(hull) - 1e-6


def _ccw(corners):
    return corners if is_ccw(corners) else list(reversed(corners))


def _near_boundary(corners, p, tol=1e-6):
    from repro.geometry import point_segment_distance

    n = len(corners)
    return any(
        point_segment_distance(p, corners[i], corners[(i + 1) % n]) <= tol
        for i in range(n)
    )
