"""Session segment-cache lifecycle: LRU bound, lease pinning, pool resize.

Regression coverage for two session bugs:

* the segment cache was unbounded — a relation mutated between joins
  got a fresh fingerprint while the stale segment stayed cached forever.
  ``JoinSession(max_cache_bytes=...)`` now evicts least-recently-joined
  segments first (``segment_cache_evictions`` counts them), and the
  executor leases (pins) the running join's segments so eviction can
  never unlink a segment in flight;
* ``_discard_pool()`` used ``shutdown(wait=False)``, so a pool rebuild
  (worker-count change) returned while old workers could still be
  mapping shared segments — racing any subsequent unlink.

The autouse leak fixture in ``conftest.py`` asserts every test below
leaves ``live_shared_segments()`` empty.
"""

import time
from dataclasses import replace

import pytest

from helpers import random_relation_pair
from repro.core.join import JoinConfig, SpatialJoinProcessor
from repro.core.parallel_exec import live_shared_segments
from repro.core.session import JoinSession

pytestmark = pytest.mark.parallel


def _config(workers=1):
    # vectorized exact method: the degenerate slivers in the generated
    # relations are out of scope for the TR*-tree processor.
    return JoinConfig(workers=workers, exact_method="vectorized")


def _plain_sorted(rel_a, rel_b):
    result = SpatialJoinProcessor(_config()).join(rel_a, rel_b)
    return sorted(result.id_pairs())


def _segment_bytes(rel_a, rel_b):
    """Measure the two relations' shared-segment footprint."""
    with JoinSession(config=_config()) as session:
        session.join(rel_a, rel_b)
        return session.cached_segment_bytes


def _mutate(relation):
    """New object-list identity -> new columnar store -> new fingerprint."""
    relation.objects = relation.objects[:-1]


class TestBoundedLRU:
    def test_mutate_and_rejoin_loop_holds_the_bound(self):
        rel_a, rel_b = random_relation_pair(6)
        bound = _segment_bytes(rel_a, rel_b)
        with JoinSession(
            config=_config(), max_cache_bytes=bound
        ) as session:
            session.join(rel_a, rel_b)
            for _ in range(5):
                _mutate(rel_b)
                result = session.join(rel_a, rel_b)
                assert sorted(result.id_pairs()) == _plain_sorted(
                    rel_a, rel_b
                )
                assert session.cached_segment_bytes <= bound
            assert session.segment_cache_evictions >= 5
            # Stale rel_b segments were evicted, not accumulated.
            assert session.cached_relations == 2
        assert not live_shared_segments()

    def test_evicts_least_recently_joined_first(self):
        rel_a, rel_b = random_relation_pair(7)
        rel_c, _ = random_relation_pair(8)
        rel_c.name = "C"
        # Room for exactly the two relations of one join.
        bound = _segment_bytes(rel_a, rel_b) + _segment_bytes(rel_a, rel_c)
        with JoinSession(
            config=_config(), max_cache_bytes=bound
        ) as session:
            session.join(rel_a, rel_b)   # cache: A, B
            session.join(rel_a, rel_c)   # A refreshed; C may evict B
            hits_before = session.segment_cache_hits
            misses_before = session.segment_cache_misses
            session.join(rel_a, rel_c)   # both hot: pure hits
            assert session.segment_cache_hits == hits_before + 2
            assert session.segment_cache_misses == misses_before
            if session.segment_cache_evictions:
                # B (least recently joined) was the victim, never A.
                misses_before = session.segment_cache_misses
                session.join(rel_a, rel_b)
                assert session.segment_cache_misses == misses_before + 1

    def test_lease_pins_in_flight_segments(self):
        rel_a, rel_b = random_relation_pair(9)
        # A zero-byte bound can never hold a segment, but the join's
        # own segments must survive until its outcomes are merged.
        with JoinSession(
            config=_config(workers=2), max_cache_bytes=0
        ) as session:
            result = session.join(rel_a, rel_b)
            assert len(result.id_pairs()) == len(set(result.id_pairs()))
            # After the lease released, the bound re-applied: empty cache.
            assert session.cached_segment_bytes == 0
            assert session.cached_relations == 0
            assert session.segment_cache_evictions == 2
        assert not live_shared_segments()

    def test_unbounded_session_never_evicts(self):
        rel_a, rel_b = random_relation_pair(10)
        with JoinSession(config=_config()) as session:
            for _ in range(3):
                _mutate(rel_b)
                session.join(rel_a, rel_b)
            assert session.segment_cache_evictions == 0
            assert session.cached_relations == 4  # A + three B versions
        assert not live_shared_segments()

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError, match="max_cache_bytes"):
            JoinSession(max_cache_bytes=-1)


class TestExplicitEvict:
    def test_evict_refused_while_leased(self):
        """``evict()`` must respect lease pins, exactly like the LRU.

        The old implementation popped and closed the segment without
        consulting ``_leased`` — an explicit evict racing an in-flight
        join unlinked shared memory its tile tasks were still mapping.
        The lease below is what a running join holds for its relations.
        """
        rel_a, rel_b = random_relation_pair(13)
        with JoinSession(config=_config()) as session:
            session.join(rel_a, rel_b)
            lease = session.lease_segments([rel_a, rel_b])
            try:
                assert session.evict(rel_a) is False
                assert session.evict(rel_b) is False
                assert session.cached_relations == 2
            finally:
                lease.release()
            # Lease released: the same evicts now succeed.
            assert session.evict(rel_a) is True
            assert session.evict(rel_b) is True
            assert session.evict(rel_a) is False  # already gone
            assert session.cached_relations == 0
        assert not live_shared_segments()

    def test_evict_hammered_during_join(self):
        """Concurrent evicts during a parallel join never corrupt it."""
        import threading

        rel_a, rel_b = random_relation_pair(14)
        expected = _plain_sorted(rel_a, rel_b)
        with JoinSession(config=_config(workers=2)) as session:
            stop = threading.Event()

            def hammer():
                while not stop.is_set():
                    session.evict(rel_a)
                    session.evict(rel_b)

            thread = threading.Thread(target=hammer)
            thread.start()
            try:
                for _ in range(3):
                    result = session.join(rel_a, rel_b)
                    assert sorted(result.id_pairs()) == expected
            finally:
                stop.set()
                thread.join()
        assert not live_shared_segments()


def _touch_then_sleep(path, value):
    with open(path, "w"):
        pass
    time.sleep(0.4)
    return value


class TestPoolResize:
    def test_resize_waits_for_inflight_futures(self, tmp_path):
        """``pool()`` rebuilds must drain old workers, not race them.

        With the old ``shutdown(wait=False)`` the resize returned while
        the submitted task was still sleeping in the old pool, so the
        future below was not done — and any segment unlink following
        the resize could race the old worker's live mapping.
        """
        started = tmp_path / "started"
        with JoinSession(config=JoinConfig(workers=2)) as session:
            future = session.pool(2).submit(
                _touch_then_sleep, str(started), 42
            )
            deadline = time.monotonic() + 10.0
            while not started.exists():
                assert time.monotonic() < deadline, "worker never started"
                time.sleep(0.005)
            session.pool(4)  # resize: discards and replaces the pool
            assert future.done()
            assert future.result() == 42

    def test_resize_mid_session_keeps_joins_correct(self):
        rel_a, rel_b = random_relation_pair(12)
        with JoinSession(config=_config(workers=2)) as session:
            first = session.join(rel_a, rel_b)
            resized = session.join(rel_a, rel_b, workers=4)
            assert resized.id_pairs() == first.id_pairs()
            assert session.pools_created == 2
            # The resize reused both cached segments: no re-shipping.
            assert resized.segment_cache_hits == 2
            assert resized.segment_cache_misses == 0
        assert not live_shared_segments()
