"""The columnar relation store: round trips, caching, and semantics.

Three guarantees under test:

1. **Bit-for-bit columns** — every column of ``ColumnarRelation`` (and
   of the per-kind ``BatchApproxArrays`` it packs) equals the scalar
   accessors (``obj.mbr``, ``appr.area()``, vertex tuples) exactly,
   including degenerate shapes (zero-area slivers, 2-point hulls).
   Hypothesis drives the relation generator across seeds.
2. **Pack once per (relation, kind)** — repeated batched joins over the
   same relations never re-run the per-object packing (the ISSUE-3
   repack-waste regression).
3. **Representation-only** — ``columnar=True/False`` produce identical
   results, order, and statistics for both engines and predicates.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import random_relation_pair, stats_fingerprint
from repro.approximations.batch import BatchApproxArrays
from repro.core import JoinConfig, SpatialJoinProcessor
from repro.datasets import ColumnarRelation, pack_rings, unpack_polygon
from repro.datasets.relations import SpatialRelation
from repro.geometry import Polygon

KINDS = ("MBR", "RMBR", "4-C", "5-C", "CH", "MBC", "MBE", "MEC", "MER")

relation_seeds = st.integers(min_value=0, max_value=10_000)

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# 1. Bit-for-bit column round trips (hypothesis over generated relations).
# ---------------------------------------------------------------------------


@SETTINGS
@given(seed=relation_seeds)
def test_base_columns_match_scalar_accessors(seed):
    rel_a, rel_b = random_relation_pair(seed, n_objects=8)
    for rel in (rel_a, rel_b):
        store = rel.columnar()
        assert store is rel.columnar(), "store must be cached"
        assert len(store) == len(rel)
        assert store.oids.tolist() == [obj.oid for obj in rel]
        for i, obj in enumerate(rel):
            m = obj.mbr
            assert store.mbrs[i].tolist() == [m.xmin, m.ymin, m.xmax, m.ymax]
            assert store.areas[i] == obj.polygon.area()


@SETTINGS
@given(seed=relation_seeds)
def test_approx_columns_match_scalar_accessors(seed):
    rel_a, _ = random_relation_pair(seed, n_objects=6)
    store = rel_a.columnar()
    for kind in KINDS:
        enc = store.approx(kind)
        assert len(enc) == len(rel_a)
        for i, obj in enumerate(rel_a):
            appr = obj.approximation(kind)
            m = appr.mbr()
            assert enc.mbrs[i].tolist() == [m.xmin, m.ymin, m.xmax, m.ymax]
            # Exact equality: the stored false area is the same python
            # float subtraction the scalar §3.3 test performs.
            assert enc.false_areas[i] == appr.area() - obj.polygon.area()
            if enc.family == "circle":
                c = appr.circle()
                assert enc.circles[i].tolist() == [
                    c.center[0], c.center[1], c.radius,
                ]
            elif enc.family == "convex":
                verts = appr.convex_vertices()
                count = len(verts)
                assert bool(enc.degenerate[i]) == (count < 3)
                row = list(zip(enc.vx[i].tolist(), enc.vy[i].tolist()))
                assert row[:count] == [(x, y) for x, y in verts]
                if count:  # padding repeats the first vertex exactly
                    assert all(p == row[0] for p in row[count:])


@SETTINGS
@given(seed=relation_seeds)
def test_ring_columns_round_trip_polygons(seed):
    rel_a, rel_b = random_relation_pair(seed, n_objects=8)
    for rel in (rel_a, rel_b):
        columns = rel.columnar().rings
        assert columns.oids.tolist() == [obj.oid for obj in rel]
        for i, obj in enumerate(rel):
            rebuilt = unpack_polygon(columns, i)
            assert rebuilt.shell == obj.polygon.shell
            assert rebuilt.holes == obj.polygon.holes
            assert rebuilt.area() == obj.polygon.area()
            assert rebuilt.mbr() == obj.polygon.mbr()


def test_ring_columns_round_trip_holes_and_degenerates():
    """Holes and zero-area shells survive the packed-ring round trip."""
    donut = Polygon(
        [(0, 0), (10, 0), (10, 10), (0, 10)],
        holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
    )
    sliver = Polygon([(0, 0), (4, 0), (2, 0)])  # zero area, collinear
    rel = SpatialRelation("H", [donut, sliver])
    columns = pack_rings(rel.objects)
    for i, obj in enumerate(rel):
        rebuilt = unpack_polygon(columns, i)
        # from_normalized adoption: bit-identical, even though the
        # constructor would flip the zero-area shell's orientation.
        assert rebuilt.shell == obj.polygon.shell
        assert rebuilt.holes == obj.polygon.holes
        assert rebuilt.area() == obj.polygon.area()


# ---------------------------------------------------------------------------
# 2. Packing happens once per (relation, kind).
# ---------------------------------------------------------------------------


def _register_spy(monkeypatch):
    calls = []
    original = BatchApproxArrays._register

    def spy(self, obj):
        calls.append(self.kind)
        return original(self, obj)

    monkeypatch.setattr(BatchApproxArrays, "_register", spy)
    return calls


def test_batched_join_packs_once_per_relation_and_kind(monkeypatch):
    rel_a, rel_b = random_relation_pair(301, n_objects=10)
    calls = _register_spy(monkeypatch)
    config = JoinConfig(engine="batched", exact_method="vectorized")

    first = SpatialJoinProcessor(config).join(rel_a, rel_b)
    packed_once = len(calls)
    assert packed_once > 0, "the filter kinds must have been packed"

    again = SpatialJoinProcessor(config).join(rel_a, rel_b)
    third = SpatialJoinProcessor(config).join(rel_a, rel_b)
    assert len(calls) == packed_once, (
        "repeated joins over the same relations must not re-pack"
    )
    assert first.id_pairs() == again.id_pairs() == third.id_pairs()

    for rel in (rel_a, rel_b):
        for kind, count in rel.columnar().pack_counts.items():
            assert count == 1, (rel.name, kind)


def test_same_relation_joined_against_two_partners_packs_once(monkeypatch):
    rel_a, rel_b = random_relation_pair(302, n_objects=8)
    _, rel_c = random_relation_pair(303, n_objects=8)
    config = JoinConfig(engine="batched", exact_method="vectorized")
    SpatialJoinProcessor(config).join(rel_a, rel_b)

    calls = _register_spy(monkeypatch)
    SpatialJoinProcessor(config).join(rel_a, rel_c)
    # Only rel_c's objects are new; rel_a reuses its cached columns.
    assert set(calls) <= {"5-C", "MER"}
    kinds = {kind for kind in calls}
    assert len(calls) == len(rel_c) * len(kinds)


def test_legacy_mode_repacks_per_join(monkeypatch):
    """columnar=False keeps the per-join incremental packing (contrast)."""
    rel_a, rel_b = random_relation_pair(304, n_objects=10)
    calls = _register_spy(monkeypatch)
    config = JoinConfig(
        engine="batched", exact_method="vectorized", columnar=False
    )
    SpatialJoinProcessor(config).join(rel_a, rel_b)
    first = len(calls)
    SpatialJoinProcessor(config).join(rel_a, rel_b)
    assert len(calls) > first, "legacy mode re-registers every join"


# ---------------------------------------------------------------------------
# 3. The toggle changes the representation, never the semantics.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["streaming", "batched"])
@pytest.mark.parametrize("predicate", ["intersects", "within"])
def test_columnar_toggle_is_semantics_free(engine, predicate):
    rel_a, rel_b = random_relation_pair(311, n_objects=10)
    results = {}
    for columnar in (True, False):
        config = JoinConfig(
            engine=engine,
            exact_method="vectorized",
            predicate=predicate,
            batch_size=16,
            columnar=columnar,
        )
        results[columnar] = SpatialJoinProcessor(config).join(rel_a, rel_b)
    assert results[True].id_pairs() == results[False].id_pairs()
    assert stats_fingerprint(results[True].stats) == stats_fingerprint(
        results[False].stats
    )


def test_from_columnar_adopts_without_packing(monkeypatch):
    rel_a, rel_b = random_relation_pair(305, n_objects=8)
    store_a = rel_a.columnar().approx("CH")
    store_b = rel_b.columnar().approx("CH")
    calls = _register_spy(monkeypatch)
    combined = BatchApproxArrays.from_columnar("CH", [store_a, store_b])
    assert calls == []
    assert len(combined) == len(rel_a) + len(rel_b)
    objects = list(rel_a) + list(rel_b)
    rows = combined.rows(objects)
    assert calls == [], "adopted objects must be pure gathers"
    assert rows.tolist() == list(range(len(objects)))
    np.testing.assert_array_equal(
        combined.mbrs, np.concatenate([store_a.mbrs, store_b.mbrs])
    )
    np.testing.assert_array_equal(
        combined.false_areas,
        np.concatenate([store_a.false_areas, store_b.false_areas]),
    )
    # A foreign object still registers incrementally on top.
    extra = SpatialRelation("X", [Polygon([(0, 0), (1, 0), (0.5, 1)])])
    row = combined.rows([extra.objects[0]])
    assert row.tolist() == [len(objects)]
    assert len(calls) == 1
    assert combined.mbrs.shape == (len(objects) + 1, 4)


def test_columnar_cache_invalidated_when_objects_replaced():
    rel_a, _ = random_relation_pair(306, n_objects=4)
    store = rel_a.columnar()
    rel_a.objects = list(rel_a.objects)[:2]  # replace the backing list
    fresh = rel_a.columnar()
    assert fresh is not store
    assert len(fresh) == 2


def test_columnar_cache_invalidated_on_inplace_resize():
    """Appending to the live object list must rebuild the columns."""
    from repro.core import partitioned_join
    from repro.datasets.relations import SpatialObject

    rel_a, rel_b = random_relation_pair(307, n_objects=4)
    store = rel_a.columnar()
    rel_a.objects.append(
        SpatialObject(len(rel_a), Polygon([(0, 0), (2, 0), (1, 2)]))
    )
    fresh = rel_a.columnar()
    assert fresh is not store
    assert len(fresh) == len(rel_a)
    assert fresh.mbrs.shape == (len(rel_a), 4)
    # End to end: the partitioned join (which partitions via the MBR
    # columns) must see the appended object exactly like the plain join.
    config = JoinConfig(exact_method="vectorized")
    plain = SpatialJoinProcessor(config).join(rel_a, rel_b)
    parted = partitioned_join(rel_a, rel_b, grid=(2, 2), config=config)
    assert sorted(parted.id_pairs()) == sorted(plain.id_pairs())


def test_config_rejects_non_bool_columnar():
    with pytest.raises(ValueError, match="columnar"):
        JoinConfig(columnar=1)
