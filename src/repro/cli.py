"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``generate``  — write a synthetic cartographic relation as WKT
``info``      — statistics of a WKT relation (Figure 2 style)
``join``      — multi-step join of two WKT relations
                (``--predicate intersects|within|distance|knn``)
``join-batch``— repeated joins through one persistent JoinSession
``query``     — multi-step window or point query over one WKT relation
``overlay``   — map-overlay (intersection layer) of two WKT relations
``distance``  — within-distance join of two WKT relations
``knn``       — k nearest objects to a point
``estimate``  — pre-execution join cost/selectivity estimate ([Gün 93])
``store``     — manage a persistent columnar relation store
                (``pack``/``ls``/``rm``)
``serve``     — long-lived join service over a pool of sessions

``store`` manages a :class:`~repro.datasets.store.RelationStore`
directory: ``pack`` parses WKT once and persists each relation's packed
columns as mmap-able pages keyed by content fingerprint; ``ls`` and
``rm`` inspect and prune.  ``join``/``join-batch``/``serve`` accept
``--store-dir`` and ``store:<fingerprint>`` relation references, which
skip WKT parsing entirely — and ``join-batch --store-dir`` warms the
session's shared-segment cache straight from the store pages before
the first join (the restart-recovery fast path)::

    python -m repro store pack ./store europe.wkt b.wkt
    python -m repro store ls ./store
    python -m repro join-batch store:<fp_a> store:<fp_b> \
        --store-dir ./store --workers 4

``serve`` starts the concurrent front-end of :mod:`repro.service`: a
JSON-lines-over-TCP endpoint multiplexing many simultaneous
join/window/knn requests onto ``--sessions`` persistent
:class:`~repro.core.session.JoinSession` objects, with a
fingerprint-keyed result cache, coalescing of identical in-flight
requests, and a bounded admission queue (429-style rejection when
``--max-pending`` executions are already in flight).  One request per
line, e.g.::

    python -m repro serve --port 8765 --sessions 2 --workers 2 &
    printf '%s\\n' '{"op": "join", "relation_a": "europe.wkt", \
"relation_b": "b.wkt", "engine": "batched"}' | nc localhost 8765

Example session::

    python -m repro generate --objects 200 --vertices 84 --out europe.wkt
    python -m repro generate --objects 200 --vertices 84 --seed 7 --out b.wkt
    python -m repro info europe.wkt
    python -m repro join europe.wkt b.wkt --conservative 5-C --progressive MER
    python -m repro join europe.wkt b.wkt --workers 4 --grid 4 4
    python -m repro join europe.wkt b.wkt --workers 4 --scheduler stealing
    python -m repro join-batch europe.wkt b.wkt --repeat 5 --workers 4
    python -m repro query europe.wkt --window 0.2 0.2 0.4 0.4
    python -m repro overlay europe.wkt b.wkt
    python -m repro distance europe.wkt b.wkt --epsilon 0.02
    python -m repro knn europe.wkt --point 0.5 0.5 --k 5
    python -m repro estimate europe.wkt b.wkt
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import FilterConfig, JoinConfig, SpatialJoinProcessor, WindowQueryProcessor
from .core.window import WindowQueryStats
from .datasets import SpatialRelation, cartographic_polygons
from .datasets.io import load_relation, save_relation
from .geometry import Rect


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-step spatial join processing (SIGMOD '94 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic relation")
    gen.add_argument("--objects", type=int, default=200)
    gen.add_argument("--vertices", type=float, default=84.0,
                     help="mean vertices per object")
    gen.add_argument("--seed", type=int, default=1994)
    gen.add_argument("--coverage", type=float, default=0.78)
    gen.add_argument("--name", default="relation")
    gen.add_argument("--out", required=True, help="output WKT file")

    info = sub.add_parser("info", help="relation statistics")
    info.add_argument("relation", help="WKT file")

    join = sub.add_parser("join", help="multi-step spatial join")
    _add_join_options(join)
    join.add_argument("--pairs", action="store_true",
                      help="print every result pair")

    batch = sub.add_parser(
        "join-batch",
        help="repeated joins through one persistent JoinSession "
             "(reused worker pool + shared-segment cache)",
    )
    _add_join_options(batch)
    batch.add_argument("--repeat", type=int, default=3,
                       help="number of joins to run through the session "
                            "(default 3); joins after the first reuse the "
                            "pool and ship zero redundant bytes")

    query = sub.add_parser("query", help="window or point query")
    query.add_argument("relation", help="WKT file")
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument("--window", nargs=4, type=float,
                       metavar=("XMIN", "YMIN", "XMAX", "YMAX"))
    group.add_argument("--point", nargs=2, type=float, metavar=("X", "Y"))

    overlay = sub.add_parser("overlay", help="map-overlay intersection layer")
    overlay.add_argument("relation_a", help="WKT file (left layer)")
    overlay.add_argument("relation_b", help="WKT file (right layer)")
    overlay.add_argument("--top", type=int, default=10,
                         help="print the N largest pieces")

    dist = sub.add_parser("distance", help="within-distance join")
    dist.add_argument("relation_a", help="WKT file (left relation)")
    dist.add_argument("relation_b", help="WKT file (right relation)")
    dist.add_argument("--epsilon", type=float, required=True,
                      help="distance threshold in data-space units")
    dist.add_argument("--pairs", action="store_true",
                      help="print every result pair")

    knn = sub.add_parser("knn", help="k nearest objects to a point")
    knn.add_argument("relation", help="WKT file")
    knn.add_argument("--point", nargs=2, type=float, required=True,
                     metavar=("X", "Y"))
    knn.add_argument("--k", type=int, default=5)

    estimate = sub.add_parser(
        "estimate", help="pre-execution join estimate ([Gün 93])"
    )
    estimate.add_argument("relation_a", help="WKT file (left relation)")
    estimate.add_argument("relation_b", help="WKT file (right relation)")

    store = sub.add_parser(
        "store",
        help="manage a persistent columnar relation store "
             "(mmap-able pages keyed by content fingerprint)",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    pack = store_sub.add_parser(
        "pack", help="pack WKT relations into the store"
    )
    pack.add_argument("store_dir", help="store directory (created if missing)")
    pack.add_argument("relations", nargs="+", metavar="WKT",
                      help="WKT files to pack")
    ls = store_sub.add_parser("ls", help="list stored relations")
    ls.add_argument("store_dir", help="store directory")
    rm = store_sub.add_parser("rm", help="remove stored relations")
    rm.add_argument("store_dir", help="store directory")
    rm.add_argument("fingerprints", nargs="+", metavar="FINGERPRINT",
                    help="fingerprints to remove (as shown by 'store ls')")

    serve = sub.add_parser(
        "serve",
        help="long-lived JSON-over-TCP join service "
             "(result cache, coalescing, backpressure)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (0 picks an ephemeral port, "
                            "printed on startup)")
    serve.add_argument("--sessions", type=int, default=2,
                       help="JoinSession pool size = concurrent "
                            "executions (default 2)")
    serve.add_argument("--max-pending", type=int, default=32,
                       help="bounded admission queue: distinct "
                            "executions queued or running before "
                            "requests are rejected 429-style "
                            "(default 32)")
    serve.add_argument("--result-cache", type=int, default=256,
                       help="result-cache entries (0 disables caching)")
    serve.add_argument("--request-timeout", type=float, default=None,
                       help="per-request timeout in seconds "
                            "(default: none)")
    serve.add_argument("--workers", type=int, default=1,
                       help="default worker processes per join "
                            "(requests may override)")
    serve.add_argument("--engine", default="streaming",
                       choices=("streaming", "batched"),
                       help="default execution engine for requests")
    serve.add_argument("--kernels", default=None,
                       choices=("auto", "numpy", "numba", "python"),
                       help="default kernel backend for requests "
                            "(execution-only; cached results are shared "
                            "across backends)")
    serve.add_argument("--grid", nargs=2, type=int, default=(4, 4),
                       metavar=("NX", "NY"),
                       help="default partition grid (default 4 4)")
    serve.add_argument("--store-dir", default=None,
                       help="persistent relation store backing "
                            "'store:<fingerprint>' relation references "
                            "and the 'warm' op (default: no store)")
    return parser


def _add_join_options(parser: argparse.ArgumentParser) -> None:
    """The options shared by ``join`` and ``join-batch``."""
    parser.add_argument("relation_a",
                        help="WKT file or store:<fingerprint> reference "
                             "(left relation)")
    parser.add_argument("relation_b",
                        help="WKT file or store:<fingerprint> reference "
                             "(right relation)")
    parser.add_argument("--store-dir", default=None,
                        help="persistent relation store resolving "
                             "store:<fingerprint> references; join-batch "
                             "additionally warms the session's segment "
                             "cache from the store pages before the first "
                             "join")
    parser.add_argument("--predicate",
                        choices=("intersects", "within", "distance", "knn"),
                        default="intersects",
                        help="join predicate: 'intersects' (default), "
                             "'within' (a in b), 'distance' (pairs with "
                             "exact distance <= --epsilon), or 'knn' (each "
                             "left object's --k nearest right objects)")
    parser.add_argument("--epsilon", type=float, default=0.0,
                        help="distance threshold for --predicate distance "
                             "(data-space units, default 0)")
    parser.add_argument("--k", type=int, default=1,
                        help="neighbours per left object for "
                             "--predicate knn (default 1)")
    parser.add_argument("--kernels", default=None,
                        choices=("auto", "numpy", "numba", "python"),
                        help="kernel backend for the bulk filter/refine hot "
                             "paths: 'numpy' (vectorised oracle), 'numba' "
                             "(JIT-compiled, requires numba), 'python' "
                             "(uncompiled loops, for testing), or 'auto' "
                             "(numba when importable, else numpy; the "
                             "default, overridable via REPRO_KERNELS). "
                             "Results are identical across backends")
    parser.add_argument("--conservative", default="5-C",
                        help="conservative approximation kind or 'none'")
    parser.add_argument("--progressive", default="MER",
                        help="progressive approximation kind or 'none'")
    parser.add_argument("--exact", default="trstar",
                        choices=("trstar", "planesweep", "quadratic",
                                 "vectorized"))
    parser.add_argument("--engine", default="streaming",
                        choices=("streaming", "batched"),
                        help="execution engine: per-pair streaming pipeline "
                             "or vectorized batched filter (see repro.engine)")
    parser.add_argument("--batch-size", type=int, default=1024,
                        help="candidate pairs per block for --engine batched")
    parser.add_argument("--exact-batch", type=int, default=1,
                        help="remaining candidates per refinement batch; 1 "
                             "(default) runs the scalar per-pair exact "
                             "processor, N > 1 routes batches through the "
                             "vectorized columnar refinement kernels "
                             "(requires --exact vectorized)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the partitioned tile "
                             "executor; 1 (default) runs the ordinary serial "
                             "join in-process")
    parser.add_argument("--grid", nargs=2, type=int, default=(4, 4),
                        metavar=("NX", "NY"),
                        help="tile grid for --workers > 1 (default 4 4)")
    parser.add_argument("--scheduler", default="static",
                        choices=("static", "stealing"),
                        help="tile dispatch strategy for --workers > 1: "
                             "'static' submits tiles in tile order (the "
                             "deterministic baseline), 'stealing' "
                             "dispatches size-ordered and lets idle workers "
                             "pull the next pending tile (results are "
                             "identical either way)")
    parser.add_argument("--partitioner", default="grid",
                        choices=("grid", "rtree"),
                        help="tile-formation strategy for --workers > 1: "
                             "'grid' cuts the data space into uniform "
                             "--grid tiles, 'rtree' forms tasks from the "
                             "leaf overlaps of a synchronized R*-tree "
                             "traversal with space-filling-curve "
                             "declustering (results are identical either "
                             "way)")
    parser.add_argument("--target-tasks", type=int, default=64,
                        help="task budget for --partitioner rtree: the "
                             "synchronized traversal descends until roughly "
                             "this many tree-guided tasks exist (>= 1, "
                             "default 64); inert for --partitioner grid, "
                             "which is sized by --grid")
    parser.add_argument("--columnar", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="use the relation-level columnar store: "
                             "pre-packed filter columns for --engine batched "
                             "and the shared-memory wire format for "
                             "--workers > 1 (--no-columnar selects per-join "
                             "packing and pickled tile slices)")


def _join_config(args: argparse.Namespace) -> JoinConfig:
    """Build the validated JoinConfig for ``join``/``join-batch`` args.

    Raises ``ValueError`` (caught by the commands) when any setting is
    invalid — including the grid, which is validated here at the CLI
    boundary instead of deep inside the tile planner.
    """
    # --kernels left unset falls through to the JoinConfig default
    # (REPRO_KERNELS env var, else 'auto').
    kernel_override = (
        {} if args.kernels is None else {"kernels": args.kernels}
    )
    return JoinConfig(
        filter=FilterConfig(
            conservative=_none_or(args.conservative),
            progressive=_none_or(args.progressive),
        ),
        exact_method=args.exact,
        predicate=args.predicate,
        epsilon=args.epsilon,
        k=args.k,
        engine=args.engine,
        batch_size=args.batch_size,
        exact_batch=args.exact_batch,
        workers=args.workers,
        columnar=args.columnar,
        scheduler=args.scheduler,
        partitioner=args.partitioner,
        target_tasks=args.target_tasks,
        grid=tuple(args.grid),
        **kernel_override,
    )


def _none_or(value: str) -> Optional[str]:
    return None if value.lower() in ("none", "-", "") else value


def _open_store(store_dir: Optional[str]):
    """The command's RelationStore, or None when no --store-dir given."""
    if store_dir is None:
        return None
    from .datasets.store import RelationStore

    return RelationStore(store_dir)


def _resolve_relation(ref: str, store) -> SpatialRelation:
    """Load a relation argument: WKT path or ``store:<fingerprint>``.

    Store references materialise from the store's mmap pages — no WKT
    parsing, no re-packing, fingerprint trusted from the manifest.
    Raises ``ValueError`` (caught at each command boundary) for a store
    reference without ``--store-dir`` or an unknown/corrupted entry.
    """
    if not ref.startswith("store:"):
        return load_relation(ref)
    if store is None:
        raise ValueError(
            f"relation reference {ref!r} needs --store-dir"
        )
    from .datasets.store import StoreError

    try:
        return store.load_relation(ref[len("store:"):])
    except StoreError as exc:
        raise ValueError(str(exc)) from exc


def cmd_generate(args: argparse.Namespace) -> int:
    polygons = cartographic_polygons(
        n_objects=args.objects,
        mean_vertices=args.vertices,
        coverage=args.coverage,
        seed=args.seed,
    )
    relation = SpatialRelation(args.name, polygons)
    save_relation(relation, args.out)
    stats = relation.statistics()
    print(
        f"wrote {args.out}: {stats['objects']} objects, "
        f"m_avg={stats['m_avg']:.0f}"
    )
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    relation = load_relation(args.relation)
    stats = relation.statistics()
    total_area = sum(o.polygon.area() for o in relation)
    print(f"relation: {relation.name}")
    print(f"objects:  {stats['objects']}")
    print(
        f"vertices: avg {stats['m_avg']:.1f}, "
        f"min {stats['m_min']}, max {stats['m_max']}"
    )
    print(f"total object area: {total_area:.4f}")
    return 0


def cmd_join(args: argparse.Namespace) -> int:
    try:
        store = _open_store(args.store_dir)
        rel_a = _resolve_relation(args.relation_a, store)
        rel_b = _resolve_relation(args.relation_b, store)
        config = _join_config(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if config.workers > 1:
        from .core.parallel_exec import parallel_partitioned_join

        try:
            result = parallel_partitioned_join(rel_a, rel_b, config=config)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if result.partitioner == "rtree":
            formation = f"{result.tile_tasks} tree-guided tasks (rtree)"
        else:
            formation = (
                f"{result.tile_tasks} tile tasks on a "
                f"{config.grid[0]}x{config.grid[1]} grid"
            )
        print(
            f"parallel executor: {config.workers} workers, "
            f"{formation}, "
            f"scheduler {result.scheduler} ({result.steal_count} steals), "
            f"wire format {result.wire_format}, "
            f"{result.elapsed_seconds * 1e3:.0f} ms"
        )
    else:
        result = SpatialJoinProcessor(config).join(rel_a, rel_b)
    stats = result.stats
    label = args.predicate
    if args.predicate == "distance":
        label = f"distance (eps={config.epsilon})"
    elif args.predicate == "knn":
        label = f"knn (k={config.k})"
    print(f"{label} join: {len(result)} result pairs")
    print(f"  candidates (MBR-join):  {stats.candidate_pairs}")
    print(f"  filter false hits:      {stats.filter_false_hits}")
    print(f"  filter hits:            {stats.filter_hits}")
    print(f"  exact tests:            {stats.remaining_candidates}")
    if stats.refine_batches:
        print(
            f"  refinement batches:     {stats.refine_batches} "
            f"({stats.refine_batch_pairs} pairs batched)"
        )
    print(f"  identification rate:    {stats.identification_rate():.0%}")
    if args.pairs:
        for a, b in result.id_pairs():
            print(f"{a}\t{b}")
    return 0


def cmd_join_batch(args: argparse.Namespace) -> int:
    from .core.session import JoinSession

    try:
        store = _open_store(args.store_dir)
        rel_a = _resolve_relation(args.relation_a, store)
        rel_b = _resolve_relation(args.relation_b, store)
        config = _join_config(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.repeat < 1:
        print(f"error: --repeat must be >= 1, got {args.repeat}",
              file=sys.stderr)
        return 2
    print(
        f"join-batch: {args.repeat} joins through one session "
        f"({config.workers} workers, {config.grid[0]}x{config.grid[1]} grid, "
        f"scheduler {config.scheduler})"
    )
    latencies = []
    baseline = None
    with JoinSession(config=config) as session:
        if store is not None:
            # Warm-start: stream whichever of the two relations the
            # store holds straight into the segment cache, so even the
            # first join reuses cached segments (0 new shared bytes).
            stored = [
                fingerprint
                for fingerprint in {
                    rel_a.columnar().fingerprint,
                    rel_b.columnar().fingerprint,
                }
                if fingerprint in store
            ]
            if stored:
                report = session.warm_from_store(store, sorted(stored))
                loaded = sum(
                    1 for v in report.values() if v == "loaded"
                )
                print(
                    f"  warmed {loaded} shared segments from store "
                    f"pages ({session.store_load_bytes} bytes, "
                    f"I/O-parallel)"
                )
        for i in range(args.repeat):
            result = session.join(rel_a, rel_b)
            latencies.append(result.elapsed_seconds)
            print(
                f"  join {i + 1}/{args.repeat}: {len(result)} pairs, "
                f"{result.elapsed_seconds * 1e3:.0f} ms, "
                f"{result.shared_payload_bytes} new shared bytes, "
                f"{result.segment_cache_hits} cached segments reused, "
                f"{result.steal_count} steals"
            )
            pairs = sorted(result.id_pairs())
            if baseline is None:
                baseline = pairs
            elif pairs != baseline:
                print("error: a warm join diverged from the first join",
                      file=sys.stderr)
                return 3
        print(
            f"session: {session.joins_run} joins, "
            f"{session.pools_created} pools forked, "
            f"{session.segment_cache_hits} segment cache hits, "
            f"{session.cached_segment_bytes} shared bytes cached"
        )
    if len(latencies) > 1:
        warm = min(latencies[1:])
        ratio = latencies[0] / warm if warm > 0 else 1.0
        print(
            f"first join {latencies[0] * 1e3:.0f} ms, best warm join "
            f"{warm * 1e3:.0f} ms ({ratio:.1f}x)"
        )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    relation = load_relation(args.relation)
    processor = WindowQueryProcessor(relation)
    stats = WindowQueryStats()
    if args.window:
        xmin, ymin, xmax, ymax = args.window
        results = processor.window_query(Rect(xmin, ymin, xmax, ymax), stats)
        label = f"window ({xmin}, {ymin}, {xmax}, {ymax})"
    else:
        x, y = args.point
        results = processor.point_query((x, y), stats)
        label = f"point ({x}, {y})"
    print(f"{label}: {len(results)} objects")
    print(
        f"  candidates {stats.candidates}, filter hits {stats.filter_hits}, "
        f"exact tests {stats.exact_tests}"
    )
    for obj in results:
        print(f"  object {obj.oid} (vertices={obj.polygon.num_vertices})")
    return 0


def cmd_overlay(args: argparse.Namespace) -> int:
    from .core.overlay import MapOverlay

    rel_a = load_relation(args.relation_a)
    rel_b = load_relation(args.relation_b)
    result = MapOverlay().intersection(rel_a, rel_b)
    print(f"overlay: {len(result)} intersection pieces")
    print(f"  total area: {result.total_area():.6f}")
    if result.failed_pairs:
        print(f"  degenerate pairs skipped: {len(result.failed_pairs)}")
    largest = sorted(result.pieces, key=lambda p: p.area, reverse=True)
    for piece in largest[: args.top]:
        print(f"  A{piece.oid_a} x B{piece.oid_b}  area={piece.area:.6f}")
    return 0


def cmd_distance(args: argparse.Namespace) -> int:
    from .core.distance import validate_epsilon, within_distance_join

    # Validate before loading anything: a bad threshold should fail
    # fast at the argument boundary, like `join` validates its config.
    try:
        epsilon = validate_epsilon(args.epsilon)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rel_a = load_relation(args.relation_a)
    rel_b = load_relation(args.relation_b)
    result = within_distance_join(rel_a, rel_b, epsilon)
    stats = result.stats
    print(f"within-distance join (eps={args.epsilon}): {len(result)} pairs")
    print(f"  candidates:        {stats.candidate_pairs}")
    print(f"  circle-bound hits: {stats.filter_hits}")
    print(f"  circle-bound false hits: {stats.filter_false_hits}")
    print(f"  exact tests:       {stats.remaining_candidates}")
    if args.pairs:
        for a, b in result.id_pairs():
            print(f"{a}\t{b}")
    return 0


def cmd_knn(args: argparse.Namespace) -> int:
    from .index.knn import knn_query, validate_k

    try:
        k = validate_k(args.k)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    relation = load_relation(args.relation)
    tree = relation.build_rtree()
    point = (args.point[0], args.point[1])
    results = knn_query(tree, point, k)
    print(f"{len(results)} nearest objects to {point}:")
    for dist, obj in results:
        print(f"  object {obj.oid}  mindist={dist:.6f}")
    return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    from .core.selectivity import estimate_join

    rel_a = load_relation(args.relation_a)
    rel_b = load_relation(args.relation_b)
    est = estimate_join(rel_a, rel_b)
    print("pre-execution join estimate:")
    print(f"  expected candidates:   {est.candidates:.0f}")
    print(f"  expected hits:         {est.hits:.0f}")
    print(f"  expected false hits:   {est.false_hits:.0f}")
    print(f"  settled by filter:     {est.filter_effectiveness:.0%}")
    print(f"  expected exact tests:  {est.remaining_candidates:.0f}")
    print(f"  expected cost:         {est.total_seconds:.2f} s (§5 constants)")
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    from .datasets.store import RelationStore, StoreError

    store = RelationStore(args.store_dir)
    if args.store_command == "pack":
        for path in args.relations:
            try:
                relation = load_relation(path)
            except (OSError, ValueError) as exc:
                print(f"error: cannot load {path!r}: {exc}",
                      file=sys.stderr)
                return 2
            fingerprint = store.save(relation)
            stored = store.load(fingerprint)
            print(
                f"packed {path}: {relation.name} "
                f"({len(relation)} objects, {stored.nbytes} page bytes) "
                f"-> {fingerprint}"
            )
        return 0
    if args.store_command == "ls":
        fingerprints = store.fingerprints()
        if not fingerprints:
            print(f"store {store.directory}: empty")
            return 0
        print(f"store {store.directory}: {len(fingerprints)} relations")
        for fingerprint in fingerprints:
            try:
                stored = store.load(fingerprint)
            except StoreError as exc:
                print(f"  {fingerprint}  CORRUPTED: {exc}")
                continue
            print(
                f"  {fingerprint}  {stored.name}  "
                f"objects={stored.n_objects}  bytes={stored.nbytes}"
            )
        return 0
    # rm
    status = 0
    for fingerprint in args.fingerprints:
        if store.remove(fingerprint):
            print(f"removed {fingerprint}")
        else:
            print(f"error: {fingerprint} is not in store "
                  f"{store.directory}", file=sys.stderr)
            status = 2
    return status


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import JoinService, run_server

    try:
        kernel_override = (
            {} if args.kernels is None else {"kernels": args.kernels}
        )
        config = JoinConfig(
            workers=args.workers,
            engine=args.engine,
            grid=tuple(args.grid),
            **kernel_override,
        )
        service = JoinService(
            config=config,
            sessions=args.sessions,
            max_pending=args.max_pending,
            result_cache_entries=args.result_cache,
            request_timeout=args.request_timeout,
            store_dir=args.store_dir,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def announce(server) -> None:
        print(
            f"join service listening on {server.host}:{server.port} "
            f"({args.sessions} sessions, max {args.max_pending} pending, "
            f"{args.result_cache} cached results)",
            flush=True,
        )

    try:
        asyncio.run(
            run_server(service, args.host, args.port, ready=announce)
        )
    except KeyboardInterrupt:
        # asyncio.run normally converts Ctrl-C into task cancellation,
        # which run_server absorbs; this only triggers on a second ^C.
        pass
    print("join service stopped")
    return 0


_COMMANDS = {
    "generate": cmd_generate,
    "info": cmd_info,
    "join": cmd_join,
    "join-batch": cmd_join_batch,
    "query": cmd_query,
    "overlay": cmd_overlay,
    "distance": cmd_distance,
    "knn": cmd_knn,
    "estimate": cmd_estimate,
    "store": cmd_store,
    "serve": cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
