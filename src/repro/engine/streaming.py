"""Per-pair (tuple-at-a-time) execution — the paper's original pipeline.

Candidate pairs stream through the geometric filter and the exact
processor one at a time; no candidate set is materialised between steps
(§2.4: "no additional cost arises for handling these candidates").  This
is the code that used to live inside
:class:`repro.core.join.SpatialJoinProcessor`, extracted unchanged so it
can serve as the reference backend for the differential-testing harness.
"""

from __future__ import annotations

from typing import Iterator

from ..core.filters import FilterOutcome, geometric_filter
from ..core.stats import MultiStepStats
from .base import Engine, Pair


class StreamingEngine(Engine):
    """Tuple-at-a-time pipeline over the MBR-join candidate stream."""

    name = "streaming"

    def process(
        self, candidates: Iterator[Pair], stats: MultiStepStats, refinement=None
    ) -> Iterator[Pair]:
        cfg = self.config
        within = cfg.predicate == "within"
        if within:
            from ..core.within import within_filter

        refine = self.refinement_pipeline(stats, refinement)
        for obj_a, obj_b in candidates:
            stats.candidate_pairs += 1
            if within:
                outcome = within_filter(obj_a, obj_b, cfg.filter, stats)
            else:
                outcome = geometric_filter(obj_a, obj_b, cfg.filter, stats)
            if outcome is FilterOutcome.FALSE_HIT:
                continue
            yield from refine.push(
                (obj_a, obj_b), outcome is FilterOutcome.CANDIDATE
            )
        yield from refine.flush()
