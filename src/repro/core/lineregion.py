"""Line-region join: polylines (rivers) against polygons (counties).

The second half of the paper's §2.2 example inventory: joining
line-shaped spatial attributes against polygonal areas ("find all rivers
crossing a county").  The pipeline keeps the paper's shape:

1. **MBR step** — R*-tree join of the polylines' MBRs against the
   regions' MBRs;
2. **geometric filter** — a region's stored approximations settle
   candidates: a chain vertex inside the *progressive* approximation
   proves a hit; a chain whose MBR misses the *conservative*
   approximation's MBR cannot intersect (cheap false-hit pre-test);
3. **exact step** — segment-against-edge tests plus a containment
   probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..datasets.relations import SpatialObject, SpatialRelation
from ..geometry.polyline import Polyline
from ..index import JoinStats, RStarTree, rstar_join


@dataclass(frozen=True)
class LineJoinConfig:
    """Configuration of the line-region pipeline."""

    #: progressive approximation used for the vertex-inside hit test.
    progressive: Optional[str] = "MER"
    rtree_max_entries: int = 32


@dataclass
class LineJoinStats:
    candidates: int = 0
    filter_hits: int = 0
    exact_tests: int = 0
    exact_hits: int = 0
    mbr_join: JoinStats = field(default_factory=JoinStats)

    @property
    def identification_rate(self) -> float:
        return self.filter_hits / self.candidates if self.candidates else 0.0


@dataclass
class LineJoinResult:
    """(polyline index, region) pairs plus statistics."""

    pairs: List[Tuple[int, SpatialObject]]
    stats: LineJoinStats

    def id_pairs(self) -> List[Tuple[int, int]]:
        return [(line_idx, obj.oid) for line_idx, obj in self.pairs]

    def __len__(self) -> int:
        return len(self.pairs)


def line_region_join(
    lines: Sequence[Polyline],
    regions: SpatialRelation,
    config: Optional[LineJoinConfig] = None,
) -> LineJoinResult:
    """All (line, region) pairs whose geometries intersect."""
    cfg = config or LineJoinConfig()
    stats = LineJoinStats()
    line_tree = RStarTree(max_entries=cfg.rtree_max_entries)
    for idx, line in enumerate(lines):
        line_tree.insert(line.mbr(), (idx, line))
    region_tree = regions.build_rtree(max_entries=cfg.rtree_max_entries)

    pairs: List[Tuple[int, SpatialObject]] = []
    use_progressive = (
        cfg.progressive is not None and cfg.progressive.lower() != "none"
    )
    for (idx, line), obj in rstar_join(
        line_tree, region_tree, None, None, stats.mbr_join
    ):
        stats.candidates += 1
        if use_progressive:
            approx = obj.approximation(cfg.progressive)
            if any(approx.contains_point(p) for p in line.points):
                stats.filter_hits += 1
                pairs.append((idx, obj))
                continue
        stats.exact_tests += 1
        if line.intersects_polygon(obj.polygon):
            stats.exact_hits += 1
            pairs.append((idx, obj))
    return LineJoinResult(pairs=pairs, stats=stats)


def brute_force_line_region_join(
    lines: Sequence[Polyline], regions: SpatialRelation
) -> List[Tuple[int, int]]:
    """Nested-loops oracle for :func:`line_region_join`."""
    out: List[Tuple[int, int]] = []
    for idx, line in enumerate(lines):
        for obj in regions:
            if not line.mbr().intersects(obj.mbr):
                continue
            if line.intersects_polygon(obj.polygon):
                out.append((idx, obj.oid))
    return out
