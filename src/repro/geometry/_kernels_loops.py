"""Loop-form geometry kernels for the compiled kernel tier.

Every function here is a *scalar loop* transliteration of one numpy
oracle kernel from :mod:`repro.geometry.fastops` (or of the scalar
plane sweep in :mod:`repro.exact.planesweep`), written in the
nopython-compatible subset of Python that ``numba.njit`` accepts:
plain ``for`` loops over contiguous float64/int64 arrays, ``math``
scalars, no Python objects.

The module itself never imports numba.  :mod:`repro.geometry.kernels`
compiles these functions with ``numba.njit(cache=True)`` when numba is
importable (the ``"numba"`` backend) and calls them uncompiled
otherwise (the ``"python"`` backend, which exists so the loop logic is
differential-testable against the numpy oracle even on machines
without numba).

Float arithmetic is kept operation-for-operation identical to the
oracle kernels — same expressions, same epsilons, same evaluation
order — so all backends decide every predicate identically and the
differential suites stay byte-identical across backends.
"""

from __future__ import annotations

import math

import numpy as np

#: same absolute tolerance as ``repro.geometry.predicates.EPSILON``.
EPSILON = 1e-12

#: names compiled by the numba backend (helpers first is not required —
#: numba resolves globals at first-call compile time).
JIT_FUNCTIONS = (
    "_orient_sign",
    "_cross",
    "_on_seg",
    "_seg_intersect",
    "_point_seg_dist",
    "_edge_y_at",
    "_edge_slope",
    "segments_intersect_rows",
    "points_in_polygons",
    "edge_matrix_any",
    "edges_overlapping_rect",
    "rects_intersect_rows",
    "min_edge_distance",
    "sweep_core",
)


def _cross(ax, ay, bx, by, cx, cy):
    """Raw signed cross product of ``(b - a) x (c - a)``."""
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)


def _orient_sign(ax, ay, bx, by, cx, cy):
    """Scalar ``predicates.orientation``: sign in {-1, 0, +1}."""
    cross = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    if cross > EPSILON:
        return 1
    if cross < -EPSILON:
        return -1
    return 0


def _on_seg(px, py, qx, qy, rx, ry):
    """Scalar ``predicates.on_segment``: ``q`` in the eps-closed box ``p-r``."""
    if qx < min(px, rx) - EPSILON:
        return False
    if qx > max(px, rx) + EPSILON:
        return False
    if qy < min(py, ry) - EPSILON:
        return False
    if qy > max(py, ry) + EPSILON:
        return False
    return True


def _seg_intersect(p1x, p1y, p2x, p2y, q1x, q1y, q2x, q2y):
    """Scalar ``segment.segments_intersect`` on unpacked coordinates."""
    o1 = _orient_sign(p1x, p1y, p2x, p2y, q1x, q1y)
    o2 = _orient_sign(p1x, p1y, p2x, p2y, q2x, q2y)
    o3 = _orient_sign(q1x, q1y, q2x, q2y, p1x, p1y)
    o4 = _orient_sign(q1x, q1y, q2x, q2y, p2x, p2y)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_seg(p1x, p1y, q1x, q1y, p2x, p2y):
        return True
    if o2 == 0 and _on_seg(p1x, p1y, q2x, q2y, p2x, p2y):
        return True
    if o3 == 0 and _on_seg(q1x, q1y, p1x, p1y, q2x, q2y):
        return True
    if o4 == 0 and _on_seg(q1x, q1y, p2x, p2y, q2x, q2y):
        return True
    return False


def _point_seg_dist(px, py, ax, ay, bx, by):
    """Scalar ``predicates.point_segment_distance`` (sqrt, not hypot, so
    the numpy oracle computes bit-identical values)."""
    dx = bx - ax
    dy = by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq <= EPSILON * EPSILON:
        ddx = px - ax
        ddy = py - ay
        return math.sqrt(ddx * ddx + ddy * ddy)
    t = ((px - ax) * dx + (py - ay) * dy) / seg_len_sq
    if t < 0.0:
        t = 0.0
    elif t > 1.0:
        t = 1.0
    cx = ax + t * dx
    cy = ay + t * dy
    ddx = px - cx
    ddy = py - cy
    return math.sqrt(ddx * ddx + ddy * ddy)


# ---------------------------------------------------------------------------
# Bulk kernels (loop counterparts of the fastops numpy kernels)
# ---------------------------------------------------------------------------


def segments_intersect_rows(p1x, p1y, p2x, p2y, q1x, q1y, q2x, q2y):
    """Loop counterpart of ``fastops.segments_intersect_bulk``."""
    n = p1x.shape[0]
    out = np.zeros(n, dtype=np.bool_)
    for i in range(n):
        out[i] = _seg_intersect(
            p1x[i], p1y[i], p2x[i], p2y[i], q1x[i], q1y[i], q2x[i], q2y[i]
        )
    return out


def points_in_polygons(px, py, qidx, ex1, ey1, ex2, ey2, mbrs):
    """Loop counterpart of ``fastops.points_in_polygons_bulk``.

    ``mbrs`` is a ``(k, 4)`` matrix, or a ``(0, 4)`` sentinel when the
    caller passed no MBR pretest (matching ``mbrs=None`` in the oracle).
    """
    k = px.shape[0]
    inside = np.zeros(k, dtype=np.bool_)
    boundary = np.zeros(k, dtype=np.bool_)
    for e in range(ex1.shape[0]):
        q = qidx[e]
        x = px[q]
        y = py[q]
        o = _orient_sign(ex1[e], ey1[e], x, y, ex2[e], ey2[e])
        if o == 0 and _on_seg(ex1[e], ey1[e], x, y, ex2[e], ey2[e]):
            boundary[q] = True
        if (ey2[e] > y) != (ey1[e] > y):
            x_cross = (
                (ex1[e] - ex2[e]) * (y - ey2[e]) / (ey1[e] - ey2[e]) + ex2[e]
            )
            if x < x_cross:
                inside[q] = not inside[q]
    for q in range(k):
        if boundary[q]:
            inside[q] = True
    if mbrs.shape[0] == k:
        for q in range(k):
            ok = (
                mbrs[q, 0] <= px[q]
                and px[q] <= mbrs[q, 2]
                and mbrs[q, 1] <= py[q]
                and py[q] <= mbrs[q, 3]
            )
            if not ok:
                inside[q] = False
    return inside


def edge_matrix_any(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2):
    """Loop counterpart of ``fastops.edge_matrix_intersect_any``.

    The oracle answers "does *any* edge pair intersect" in two passes
    (all proper crossings, then all touches); a per-pair
    proper-or-touch loop with early return computes the same boolean.
    """
    eps = 1e-12
    n1 = ax1.shape[0]
    n2 = bx1.shape[0]
    for i in range(n1):
        p1x = ax1[i]
        p1y = ay1[i]
        p2x = ax2[i]
        p2y = ay2[i]
        for j in range(n2):
            q1x = bx1[j]
            q1y = by1[j]
            q2x = bx2[j]
            q2y = by2[j]
            o1 = _cross(p1x, p1y, p2x, p2y, q1x, q1y)
            o2 = _cross(p1x, p1y, p2x, p2y, q2x, q2y)
            o3 = _cross(q1x, q1y, q2x, q2y, p1x, p1y)
            o4 = _cross(q1x, q1y, q2x, q2y, p2x, p2y)
            if ((o1 > eps and o2 < -eps) or (o1 < -eps and o2 > eps)) and (
                (o3 > eps and o4 < -eps) or (o3 < -eps and o4 > eps)
            ):
                return True
            if abs(o1) <= eps and _on_seg(p1x, p1y, q1x, q1y, p2x, p2y):
                return True
            if abs(o2) <= eps and _on_seg(p1x, p1y, q2x, q2y, p2x, p2y):
                return True
            if abs(o3) <= eps and _on_seg(q1x, q1y, p1x, p1y, q2x, q2y):
                return True
            if abs(o4) <= eps and _on_seg(q1x, q1y, p2x, p2y, q2x, q2y):
                return True
    return False


def edges_overlapping_rect(x1, y1, x2, y2, xmin, ymin, xmax, ymax):
    """Loop counterpart of ``fastops.edges_overlapping_rect_mask``."""
    n = x1.shape[0]
    out = np.zeros(n, dtype=np.bool_)
    for i in range(n):
        out[i] = (
            min(x1[i], x2[i]) <= xmax
            and max(x1[i], x2[i]) >= xmin
            and min(y1[i], y2[i]) <= ymax
            and max(y1[i], y2[i]) >= ymin
        )
    return out


def rects_intersect_rows(a, b):
    """Loop counterpart of ``fastops.rects_intersect_bulk``."""
    n = a.shape[0]
    out = np.zeros(n, dtype=np.bool_)
    for i in range(n):
        out[i] = (
            a[i, 0] <= b[i, 2]
            and b[i, 0] <= a[i, 2]
            and a[i, 1] <= b[i, 3]
            and b[i, 1] <= a[i, 3]
        )
    return out


def min_edge_distance(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2):
    """Loop counterpart of ``fastops.min_edge_distance_bulk``.

    Minimum over all edge pairs of the closed-segment distance
    (``core.distance.segment_distance`` semantics: 0 on a proper
    crossing, else the min of the four endpoint-to-segment distances).
    """
    n1 = ax1.shape[0]
    n2 = bx1.shape[0]
    best = np.inf
    for i in range(n1):
        p1x = ax1[i]
        p1y = ay1[i]
        p2x = ax2[i]
        p2y = ay2[i]
        for j in range(n2):
            q1x = bx1[j]
            q1y = by1[j]
            q2x = bx2[j]
            q2y = by2[j]
            d1 = _cross(q1x, q1y, q2x, q2y, p1x, p1y)
            d2 = _cross(q1x, q1y, q2x, q2y, p2x, p2y)
            d3 = _cross(p1x, p1y, p2x, p2y, q1x, q1y)
            d4 = _cross(p1x, p1y, p2x, p2y, q2x, q2y)
            if ((d1 > 0 and d2 < 0) or (d1 < 0 and d2 > 0)) and (
                (d3 > 0 and d4 < 0) or (d3 < 0 and d4 > 0)
            ):
                return 0.0
            d = _point_seg_dist(p1x, p1y, q1x, q1y, q2x, q2y)
            dd = _point_seg_dist(p2x, p2y, q1x, q1y, q2x, q2y)
            if dd < d:
                d = dd
            dd = _point_seg_dist(q1x, q1y, p1x, p1y, p2x, p2y)
            if dd < d:
                d = dd
            dd = _point_seg_dist(q2x, q2y, p1x, p1y, p2x, p2y)
            if dd < d:
                d = dd
            if d < best:
                best = d
    return best


# ---------------------------------------------------------------------------
# Plane-sweep core (loop counterpart of exact.planesweep._sweep_finds_
# intersection, including its cost-model counting)
# ---------------------------------------------------------------------------


def _edge_y_at(lx, ly, rx, ry, x):
    """``segment.segment_y_at`` on an unpacked left/right edge."""
    dx = rx - lx
    if abs(dx) <= EPSILON:
        return min(ly, ry)
    t = (x - lx) / dx
    return ly + t * (ry - ly)


def _edge_slope(lx, ly, rx, ry):
    """Status tie-break slope: dy/dx, +inf for vertical edges."""
    if rx > lx:
        return (ry - ly) / (rx - lx)
    return np.inf


def sweep_core(pid, lx, ly, rx, ry, ev_x, ev_del, ev_edge):
    """Shamos–Hoey sweep over pre-sorted events.

    ``pid``/``lx``/``ly``/``rx``/``ry`` describe the left/right-ordered
    edges; ``ev_x``/``ev_del``/``ev_edge`` are the event arrays sorted
    by ``(x, is_delete, left_y)`` with ties in original (edge) order —
    exactly the scalar event queue.  Replicates ``_SweepStatus``
    semantics: binary-search insertion counting one *position test* per
    key comparison, removal of the first value-equal edge, neighbour
    tests after insert/delete, and the ``idx +/- 2`` near-tie probes.

    Returns ``(found, position_tests, edge_intersection_tests)``.
    """
    n = pid.shape[0]
    status = np.empty(n, dtype=np.int64)
    m = 0
    positions = 0
    tests = 0
    for t in range(ev_x.shape[0]):
        x = ev_x[t]
        e = ev_edge[t]
        if ev_del[t] == 1:
            # list.index(edge): first *value-equal* edge in the status.
            idx = -1
            for j in range(m):
                s = status[j]
                if (
                    pid[s] == pid[e]
                    and lx[s] == lx[e]
                    and ly[s] == ly[e]
                    and rx[s] == rx[e]
                    and ry[s] == ry[e]
                ):
                    idx = j
                    break
            if idx < 0:
                continue
            for j in range(idx, m - 1):
                status[j] = status[j + 1]
            m -= 1
            if idx - 1 >= 0 and idx < m:
                below = status[idx - 1]
                above = status[idx]
                if pid[below] != pid[above]:
                    tests += 1
                    if _seg_intersect(
                        lx[below], ly[below], rx[below], ry[below],
                        lx[above], ly[above], rx[above], ry[above],
                    ):
                        return 1, positions, tests
        else:
            ky = _edge_y_at(lx[e], ly[e], rx[e], ry[e], x)
            ks = _edge_slope(lx[e], ly[e], rx[e], ry[e])
            lo = 0
            hi = m
            while lo < hi:
                mid = (lo + hi) // 2
                positions += 1
                s = status[mid]
                my = _edge_y_at(lx[s], ly[s], rx[s], ry[s], x)
                ms = _edge_slope(lx[s], ly[s], rx[s], ry[s])
                if my < ky or (my == ky and ms < ks):
                    lo = mid + 1
                else:
                    hi = mid
            for j in range(m, lo, -1):
                status[j] = status[j - 1]
            status[lo] = e
            m += 1
            idx = lo
            if idx - 1 >= 0:
                other = status[idx - 1]
                if pid[other] != pid[e]:
                    tests += 1
                    if _seg_intersect(
                        lx[e], ly[e], rx[e], ry[e],
                        lx[other], ly[other], rx[other], ry[other],
                    ):
                        return 1, positions, tests
            if idx + 1 < m:
                other = status[idx + 1]
                if pid[other] != pid[e]:
                    tests += 1
                    if _seg_intersect(
                        lx[e], ly[e], rx[e], ry[e],
                        lx[other], ly[other], rx[other], ry[other],
                    ):
                        return 1, positions, tests
            # Near-tie probes: edges whose keys coincide at x may hide a
            # crossing partner one slot further away (tol = 1e-12).
            for step in range(2):
                probe = idx - 2 if step == 0 else idx + 2
                if probe < 0 or probe >= m:
                    continue
                other = status[probe]
                y1 = _edge_y_at(lx[e], ly[e], rx[e], ry[e], x)
                y2 = _edge_y_at(lx[other], ly[other], rx[other], ry[other], x)
                if abs(y1 - y2) <= 1e-12:
                    if pid[other] != pid[e]:
                        tests += 1
                        if _seg_intersect(
                            lx[e], ly[e], rx[e], ry[e],
                            lx[other], ly[other], rx[other], ry[other],
                        ):
                            return 1, positions, tests
    return 0, positions, tests
