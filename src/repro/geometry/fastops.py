"""Vectorised per-polygon geometry (numpy) for data-scale workloads.

The paper's BW relation averages 527 vertices per object; pure-Python
per-edge loops make relation-scale preprocessing (MEC/MER construction,
trapezoid decomposition, brute-force matrices) infeasible.
:class:`EdgeArrays` keeps a polygon's edges in numpy arrays and offers
vectorised predicates.  Results are identical to the scalar predicates
in this package (property-tested); only the evaluation strategy differs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .polygon import Polygon
from .predicates import EPSILON, Coord


class EdgeArrays:
    """All edges of a polygon (shell + holes) as flat numpy arrays."""

    __slots__ = ("polygon", "x1", "y1", "x2", "y2", "hole_probes")

    def __init__(self, polygon: Polygon):
        self.polygon = polygon
        x1: List[float] = []
        y1: List[float] = []
        x2: List[float] = []
        y2: List[float] = []
        for a, b in polygon.edges():
            x1.append(a[0])
            y1.append(a[1])
            x2.append(b[0])
            y2.append(b[1])
        self.x1 = np.array(x1)
        self.y1 = np.array(y1)
        self.x2 = np.array(x2)
        self.y2 = np.array(y2)
        self.hole_probes = [h[0] for h in polygon.holes]

    def __len__(self) -> int:
        return len(self.x1)

    # -- predicates ---------------------------------------------------------

    def contains_point(self, x: float, y: float) -> bool:
        """Even-odd containment (boundary behaviour unspecified)."""
        crosses = (self.y1 > y) != (self.y2 > y)
        if not crosses.any():
            return False
        y1c = self.y1[crosses]
        y2c = self.y2[crosses]
        x1c = self.x1[crosses]
        x2c = self.x2[crosses]
        x_cross = (x2c - x1c) * (y - y1c) / (y2c - y1c) + x1c
        return bool(np.count_nonzero(x < x_cross) % 2)

    def contains_points_all(self, pts: np.ndarray) -> bool:
        """True if *all* of the ``(k, 2)`` points are inside (even-odd)."""
        px = pts[:, 0][:, None]
        py = pts[:, 1][:, None]
        crosses = (self.y1[None, :] > py) != (self.y2[None, :] > py)
        dy = self.y2 - self.y1
        dy = np.where(dy == 0, 1.0, dy)
        x_cross = (self.x2 - self.x1)[None, :] * (py - self.y1[None, :]) / dy[
            None, :
        ] + self.x1[None, :]
        counts = np.count_nonzero(crosses & (px < x_cross), axis=1)
        return bool((counts % 2 == 1).all())

    def boundary_distances(self, pts: np.ndarray) -> np.ndarray:
        """Distances from each of the ``(k, 2)`` points to the boundary."""
        dx = self.x2 - self.x1
        dy = self.y2 - self.y1
        seg_len_sq = dx * dx + dy * dy
        seg_len_sq = np.where(seg_len_sq <= 0, 1.0, seg_len_sq)
        px = pts[:, 0][:, None]
        py = pts[:, 1][:, None]
        t = ((px - self.x1) * dx + (py - self.y1) * dy) / seg_len_sq
        t = np.clip(t, 0.0, 1.0)
        cx = self.x1 + t * dx
        cy = self.y1 + t * dy
        d2 = (px - cx) ** 2 + (py - cy) ** 2
        return np.sqrt(d2.min(axis=1))

    def boundary_distance(self, x: float, y: float) -> float:
        """Distance from ``(x, y)`` to the nearest edge."""
        dx = self.x2 - self.x1
        dy = self.y2 - self.y1
        seg_len_sq = dx * dx + dy * dy
        seg_len_sq = np.where(seg_len_sq <= 0, 1.0, seg_len_sq)
        t = ((x - self.x1) * dx + (y - self.y1) * dy) / seg_len_sq
        t = np.clip(t, 0.0, 1.0)
        cx = self.x1 + t * dx
        cy = self.y1 + t * dy
        d2 = (x - cx) ** 2 + (y - cy) ** 2
        return float(np.sqrt(d2.min()))

    def any_edge_intersects_rect_interior(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> bool:
        """SAT: does any edge intersect the *open* rectangle?"""
        overlap_x = (np.maximum(self.x1, self.x2) > xmin) & (
            np.minimum(self.x1, self.x2) < xmax
        )
        overlap_y = (np.maximum(self.y1, self.y2) > ymin) & (
            np.minimum(self.y1, self.y2) < ymax
        )
        cand = overlap_x & overlap_y
        if not cand.any():
            return False
        x1 = self.x1[cand]
        y1 = self.y1[cand]
        dx = self.x2[cand] - x1
        dy = self.y2[cand] - y1
        s1 = dx * (ymin - y1) - dy * (xmin - x1)
        s2 = dx * (ymin - y1) - dy * (xmax - x1)
        s3 = dx * (ymax - y1) - dy * (xmax - x1)
        s4 = dx * (ymax - y1) - dy * (xmin - x1)
        smin = np.minimum(np.minimum(s1, s2), np.minimum(s3, s4))
        smax = np.maximum(np.maximum(s1, s2), np.maximum(s3, s4))
        return bool(((smin < 0) & (smax > 0)).any())

    def rect_inside(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> bool:
        """True if the rectangle lies inside the polygon.

        Shrinks the rectangle by a relative epsilon first so candidate
        rectangles whose border lies on polygon edges pass.
        """
        pad = max(xmax - xmin, ymax - ymin, 1e-9) * 1e-7
        xmin += pad
        ymin += pad
        xmax -= pad
        ymax -= pad
        if xmin >= xmax or ymin >= ymax:
            return False
        probes = np.array(
            [
                (xmin, ymin),
                (xmax, ymin),
                (xmax, ymax),
                (xmin, ymax),
                ((xmin + xmax) / 2, (ymin + ymax) / 2),
            ]
        )
        if not self.contains_points_all(probes):
            return False
        if self.any_edge_intersects_rect_interior(xmin, ymin, xmax, ymax):
            return False
        for hx, hy in self.hole_probes:
            if xmin < hx < xmax and ymin < hy < ymax:
                return False
        return True

    def horizontal_crossings(self, y: float) -> np.ndarray:
        """Sorted x-coordinates where edges cross the horizontal line."""
        crosses = (self.y1 > y) != (self.y2 > y)
        if not crosses.any():
            return np.empty(0)
        y1c = self.y1[crosses]
        y2c = self.y2[crosses]
        x1c = self.x1[crosses]
        x2c = self.x2[crosses]
        return np.sort((x2c - x1c) * (y - y1c) / (y2c - y1c) + x1c)


def edges_intersect_matrix_any(poly1: Polygon, poly2: Polygon) -> bool:
    """Vectorised brute-force test: does *any* edge pair intersect?

    Evaluates all ``n1 x n2`` edge pairs with broadcasting — the
    vectorised counterpart of the quadratic algorithm's first step
    (identical results, used for data-scale runs).
    """
    e1 = EdgeArrays(poly1)
    e2 = EdgeArrays(poly2)
    return edge_matrix_intersect_any(
        e1.x1, e1.y1, e1.x2, e1.y2, e2.x1, e2.y1, e2.x2, e2.y2
    )


def edge_matrix_intersect_any(
    ax1: np.ndarray,
    ay1: np.ndarray,
    ax2: np.ndarray,
    ay2: np.ndarray,
    bx1: np.ndarray,
    by1: np.ndarray,
    bx2: np.ndarray,
    by2: np.ndarray,
) -> bool:
    """``n1 x n2`` edge-pair test on raw coordinate arrays.

    The arithmetic core of :func:`edges_intersect_matrix_any`, shared
    with the batched refinement pipeline so pruned edge subsets are
    decided by the exact same operations as the full matrix.
    """
    p1x = ax1[:, None]
    p1y = ay1[:, None]
    p2x = ax2[:, None]
    p2y = ay2[:, None]
    q1x = bx1[None, :]
    q1y = by1[None, :]
    q2x = bx2[None, :]
    q2y = by2[None, :]

    eps = 1e-12

    def orient(ax, ay, bx, by, cx, cy):
        return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)

    o1 = orient(p1x, p1y, p2x, p2y, q1x, q1y)
    o2 = orient(p1x, p1y, p2x, p2y, q2x, q2y)
    o3 = orient(q1x, q1y, q2x, q2y, p1x, p1y)
    o4 = orient(q1x, q1y, q2x, q2y, p2x, p2y)
    proper = (
        ((o1 > eps) & (o2 < -eps) | (o1 < -eps) & (o2 > eps))
        & ((o3 > eps) & (o4 < -eps) | (o3 < -eps) & (o4 > eps))
    )
    if proper.any():
        return True

    # Degenerate: collinear endpoint-on-segment cases.
    def on_seg(px, py, qx, qy, rx, ry):
        return (
            (qx >= np.minimum(px, rx) - eps)
            & (qx <= np.maximum(px, rx) + eps)
            & (qy >= np.minimum(py, ry) - eps)
            & (qy <= np.maximum(py, ry) + eps)
        )

    touch = (
        ((np.abs(o1) <= eps) & on_seg(p1x, p1y, q1x, q1y, p2x, p2y))
        | ((np.abs(o2) <= eps) & on_seg(p1x, p1y, q2x, q2y, p2x, p2y))
        | ((np.abs(o3) <= eps) & on_seg(q1x, q1y, p1x, p1y, q2x, q2y))
        | ((np.abs(o4) <= eps) & on_seg(q1x, q1y, p2x, p2y, q2x, q2y))
    )
    return bool(touch.any())


def polygon_within_fast(inner: Polygon, outer: Polygon) -> bool:
    """Vectorised *within* test: is ``inner`` entirely inside ``outer``?

    Semantics: every point of ``inner`` lies in the closed ``outer``, and
    the boundaries do not cross (boundary-touching pairs are classified
    as not-within; the paper's inclusion predicate on maps concerns
    objects in general position).
    """
    if not outer.mbr().contains_rect(inner.mbr()):
        return False
    if edges_intersect_matrix_any(inner, outer):
        return False
    outer_edges = EdgeArrays(outer)
    first = inner.shell[0]
    if not outer_edges.contains_point(first[0], first[1]):
        return False
    # A hole of the outer polygon strictly inside the inner one would
    # carve area out of it (hole boundaries crossing inner are already
    # excluded by the edge test above).
    inner_edges = EdgeArrays(inner)
    for hx, hy in outer_edges.hole_probes:
        if inner_edges.contains_point(hx, hy):
            return False
    return True


# ---------------------------------------------------------------------------
# Bulk (set-at-a-time) kernels for the batched join engine.
#
# Each kernel is the array counterpart of one scalar predicate used by the
# geometric filter and replicates its arithmetic operation-for-operation, so
# the batched engine classifies every candidate pair exactly as the
# streaming engine does (see ``repro.engine``).  Rectangles are rows of
# ``(xmin, ymin, xmax, ymax)``; circles are rows of ``(cx, cy, r)``.
# ---------------------------------------------------------------------------


def rects_intersect_bulk(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise closed-rectangle overlap — bulk ``Rect.intersects``."""
    return (
        (a[:, 0] <= b[:, 2])
        & (b[:, 0] <= a[:, 2])
        & (a[:, 1] <= b[:, 3])
        & (b[:, 1] <= a[:, 3])
    )


def rects_contain_bulk(outer: np.ndarray, inner: np.ndarray) -> np.ndarray:
    """Row-wise rectangle containment — bulk ``Rect.contains_rect``."""
    return (
        (outer[:, 0] <= inner[:, 0])
        & (outer[:, 1] <= inner[:, 1])
        & (inner[:, 2] <= outer[:, 2])
        & (inner[:, 3] <= outer[:, 3])
    )


def rects_intersection_area_bulk(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise intersection area — bulk ``Rect.intersection_area``."""
    w = np.minimum(a[:, 2], b[:, 2]) - np.maximum(a[:, 0], b[:, 0])
    h = np.minimum(a[:, 3], b[:, 3]) - np.maximum(a[:, 1], b[:, 1])
    return np.where((w > 0.0) & (h > 0.0), w * h, 0.0)


def circle_slack_bulk(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise ``(r_a + r_b) - centre_distance`` for circle rows.

    The circles of row ``i`` intersect iff ``slack[i] >= 0`` (the scalar
    test is ``distance <= r_a + r_b``).  ``numpy.hypot`` may differ from
    ``math.hypot`` in the last few ulps, so callers that need decisions
    identical to the scalar predicate must re-check rows where ``|slack|``
    is below a small margin with the scalar code.
    """
    dist = np.hypot(b[:, 0] - a[:, 0], b[:, 1] - a[:, 1])
    return (a[:, 2] + b[:, 2]) - dist


def _orient_sign_bulk(
    ax: np.ndarray,
    ay: np.ndarray,
    bx: np.ndarray,
    by: np.ndarray,
    cx: np.ndarray,
    cy: np.ndarray,
) -> np.ndarray:
    """Bulk ``predicates.orientation``: per-element sign in {-1, 0, +1}.

    Same formula and the same :data:`~repro.geometry.predicates.EPSILON`
    thresholding as the scalar predicate, so decisions are identical.
    """
    cross = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    return np.where(cross > EPSILON, 1, np.where(cross < -EPSILON, -1, 0))


def _on_segment_bulk(
    px: np.ndarray,
    py: np.ndarray,
    qx: np.ndarray,
    qy: np.ndarray,
    rx: np.ndarray,
    ry: np.ndarray,
) -> np.ndarray:
    """Bulk ``predicates.on_segment``: ``q`` in the eps-closed box of ``p-r``."""
    return (
        (np.minimum(px, rx) - EPSILON <= qx)
        & (qx <= np.maximum(px, rx) + EPSILON)
        & (np.minimum(py, ry) - EPSILON <= qy)
        & (qy <= np.maximum(py, ry) + EPSILON)
    )


def segments_intersect_bulk(
    p1: np.ndarray, p2: np.ndarray, q1: np.ndarray, q2: np.ndarray
) -> np.ndarray:
    """Row-wise closed-segment intersection — bulk ``segments_intersect``.

    Inputs are ``(n, 2)`` endpoint rows: row ``i`` tests segment
    ``p1[i]-p2[i]`` against ``q1[i]-q2[i]``.  Replicates the scalar
    predicate's orientation/``on_segment`` arithmetic operation for
    operation (including the collinear-overlap and endpoint-touching
    branches), so every row decides exactly as
    :func:`repro.geometry.segment.segments_intersect`.
    """
    p1x, p1y = p1[:, 0], p1[:, 1]
    p2x, p2y = p2[:, 0], p2[:, 1]
    q1x, q1y = q1[:, 0], q1[:, 1]
    q2x, q2y = q2[:, 0], q2[:, 1]
    o1 = _orient_sign_bulk(p1x, p1y, p2x, p2y, q1x, q1y)
    o2 = _orient_sign_bulk(p1x, p1y, p2x, p2y, q2x, q2y)
    o3 = _orient_sign_bulk(q1x, q1y, q2x, q2y, p1x, p1y)
    o4 = _orient_sign_bulk(q1x, q1y, q2x, q2y, p2x, p2y)
    result = (o1 != o2) & (o3 != o4)
    result |= (o1 == 0) & _on_segment_bulk(p1x, p1y, q1x, q1y, p2x, p2y)
    result |= (o2 == 0) & _on_segment_bulk(p1x, p1y, q2x, q2y, p2x, p2y)
    result |= (o3 == 0) & _on_segment_bulk(q1x, q1y, p1x, p1y, q2x, q2y)
    result |= (o4 == 0) & _on_segment_bulk(q1x, q1y, p2x, p2y, q2x, q2y)
    return result


#: pair rows evaluated per chunk by :func:`ring_self_intersects_bulk`
#: (bounds the temporary endpoint matrices to a few dozen MB).
_SELF_INTERSECT_CHUNK = 262_144


def ring_self_intersects_bulk(ring: Sequence[Coord]) -> bool:
    """True if any two non-adjacent edges of the ring intersect.

    The vectorised core of :meth:`Polygon.is_simple`: every non-adjacent
    edge pair (``j >= i + 2``, minus the closing edge's wraparound
    adjacency) runs through :func:`segments_intersect_bulk`, which
    decides exactly like the scalar ``segments_intersect`` loop it
    replaces.
    """
    n = len(ring)
    if n < 4:
        # A triangle has no non-adjacent edge pairs.
        return False
    pts = np.asarray(ring, dtype=float)
    i_idx, j_idx = np.triu_indices(n, k=2)
    keep = ~((i_idx == 0) & (j_idx == n - 1))
    i_idx = i_idx[keep]
    j_idx = j_idx[keep]
    nxt = np.arange(1, n + 1) % n
    for lo in range(0, len(i_idx), _SELF_INTERSECT_CHUNK):
        i = i_idx[lo:lo + _SELF_INTERSECT_CHUNK]
        j = j_idx[lo:lo + _SELF_INTERSECT_CHUNK]
        hits = segments_intersect_bulk(
            pts[i], pts[nxt[i]], pts[j], pts[nxt[j]]
        )
        if hits.any():
            return True
    return False


def points_in_polygons_bulk(
    px: np.ndarray,
    py: np.ndarray,
    qidx: np.ndarray,
    ex1: np.ndarray,
    ey1: np.ndarray,
    ex2: np.ndarray,
    ey2: np.ndarray,
    mbrs: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Bulk ``Polygon.contains_point`` over many (point, polygon) queries.

    ``px``/``py`` hold ``k`` query points; the flattened edge arrays hold
    every queried polygon's edges as ``start -> end`` rows (all rings,
    shell and holes), with ``qidx[e]`` naming the query edge ``e``
    belongs to.  ``mbrs`` (``(k, 4)`` rows) adds the scalar method's MBR
    pretest.  Per query: boundary points count as inside (the scalar
    orientation/``on_segment`` boundary check, in bulk) and interior
    containment is the even-odd crossing parity over all rings — the
    same crossing condition and ``x_cross`` arithmetic as the scalar
    loop, so decisions are identical.
    """
    k = len(px)
    epx = px[qidx]
    epy = py[qidx]
    # Boundary: orientation(start, p, end) == 0 and on_segment(start, p, end).
    o = _orient_sign_bulk(ex1, ey1, epx, epy, ex2, ey2)
    boundary = (o == 0) & _on_segment_bulk(ex1, ey1, epx, epy, ex2, ey2)
    # Even-odd ray crossings.  The scalar loop walks edges as
    # (prev=start, cur=end): crossing iff (y_end > y) != (y_start > y),
    # with x_cross = (x_start - x_end) * (y - y_end) / (y_start - y_end)
    # + x_end; the divisor is nonzero wherever ``crosses`` holds.
    crosses = (ey2 > epy) != (ey1 > epy)
    dy = np.where(crosses, ey1 - ey2, 1.0)
    x_cross = (ex1 - ex2) * (epy - ey2) / dy + ex2
    toggles = crosses & (epx < x_cross)
    inside = np.bincount(qidx[toggles], minlength=k) % 2 == 1
    inside |= np.bincount(qidx[boundary], minlength=k) > 0
    if mbrs is not None:
        inside &= (
            (mbrs[:, 0] <= px)
            & (px <= mbrs[:, 2])
            & (mbrs[:, 1] <= py)
            & (py <= mbrs[:, 3])
        )
    return inside


def edges_overlapping_rect_mask(
    x1: np.ndarray,
    y1: np.ndarray,
    x2: np.ndarray,
    y2: np.ndarray,
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
) -> np.ndarray:
    """Edges whose bounding box meets the closed clip rectangle.

    The pruning pretest of the batched refinement: an edge whose own
    bounding box misses the (margin-inflated) MBR-intersection rectangle
    of a candidate pair cannot take part in any edge-pair intersection,
    so it is dropped before the ``n1 x n2`` matrix test.
    """
    return (
        (np.minimum(x1, x2) <= xmax)
        & (np.maximum(x1, x2) >= xmin)
        & (np.minimum(y1, y2) <= ymax)
        & (np.maximum(y1, y2) >= ymin)
    )


def _point_segment_distance_bulk(
    px: np.ndarray,
    py: np.ndarray,
    ax: np.ndarray,
    ay: np.ndarray,
    bx: np.ndarray,
    by: np.ndarray,
) -> np.ndarray:
    """Broadcast point-to-closed-segment distance.

    Same expressions (and ``sqrt`` instead of ``hypot``) as the loop
    kernel ``_kernels_loops._point_seg_dist``, so all backends compute
    bit-identical distances.
    """
    dx = bx - ax
    dy = by - ay
    seg_len_sq = dx * dx + dy * dy
    degenerate = seg_len_sq <= EPSILON * EPSILON
    safe = np.where(degenerate, 1.0, seg_len_sq)
    t = np.clip(((px - ax) * dx + (py - ay) * dy) / safe, 0.0, 1.0)
    cx = ax + t * dx
    cy = ay + t * dy
    ddx = px - cx
    ddy = py - cy
    dist = np.sqrt(ddx * ddx + ddy * ddy)
    ddx0 = px - ax
    ddy0 = py - ay
    dist0 = np.sqrt(ddx0 * ddx0 + ddy0 * ddy0)
    return np.where(degenerate, dist0, dist)


def min_edge_distance_bulk(
    ax1: np.ndarray,
    ay1: np.ndarray,
    ax2: np.ndarray,
    ay2: np.ndarray,
    bx1: np.ndarray,
    by1: np.ndarray,
    bx2: np.ndarray,
    by2: np.ndarray,
) -> float:
    """Minimum closed-segment distance over all ``n1 x n2`` edge pairs.

    The bulk counterpart of ``core.distance.segment_distance`` reduced
    over every pair: 0 for a properly crossing pair (the raw-sign
    crossing test, no epsilon), else the minimum of the four
    endpoint-to-segment distances.  Used by the exact step of the
    distance-join predicate; returns ``inf`` for empty edge sets.
    """
    if len(ax1) == 0 or len(bx1) == 0:
        return float("inf")
    p1x = ax1[:, None]
    p1y = ay1[:, None]
    p2x = ax2[:, None]
    p2y = ay2[:, None]
    q1x = bx1[None, :]
    q1y = by1[None, :]
    q2x = bx2[None, :]
    q2y = by2[None, :]

    def cross(ax, ay, bx, by, cx, cy):
        return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)

    d1 = cross(q1x, q1y, q2x, q2y, p1x, p1y)
    d2 = cross(q1x, q1y, q2x, q2y, p2x, p2y)
    d3 = cross(p1x, p1y, p2x, p2y, q1x, q1y)
    d4 = cross(p1x, p1y, p2x, p2y, q2x, q2y)
    proper = (((d1 > 0) & (d2 < 0)) | ((d1 < 0) & (d2 > 0))) & (
        ((d3 > 0) & (d4 < 0)) | ((d3 < 0) & (d4 > 0))
    )
    dist = np.minimum(
        np.minimum(
            _point_segment_distance_bulk(p1x, p1y, q1x, q1y, q2x, q2y),
            _point_segment_distance_bulk(p2x, p2y, q1x, q1y, q2x, q2y),
        ),
        np.minimum(
            _point_segment_distance_bulk(q1x, q1y, p1x, p1y, p2x, p2y),
            _point_segment_distance_bulk(q2x, q2y, p1x, p1y, p2x, p2y),
        ),
    )
    dist = np.where(proper, 0.0, dist)
    return float(dist.min())


#: cap on the temporary projection-tensor size of the bulk SAT kernel.
_SAT_CHUNK_ELEMS = 4_000_000


def convex_intersect_bulk(
    avx: np.ndarray,
    avy: np.ndarray,
    bvx: np.ndarray,
    bvy: np.ndarray,
    eps: float = EPSILON,
) -> np.ndarray:
    """Row-wise separating-axis test — bulk ``convex_intersect``.

    Inputs are padded vertex matrices: row ``i`` of ``avx``/``avy`` holds
    the CCW vertices of polygon ``a_i`` followed by copies of its *first*
    vertex up to the matrix width.  That padding closes the ring (the last
    real edge ends at the first vertex) and makes every surplus edge
    degenerate with a zero normal, which can never certify a separation;
    surplus vertex columns duplicate the first vertex and so never change
    a min/max projection.  The arithmetic per axis is identical to the
    scalar SAT (products, sums, ``min_b > max_a + eps``), hence so are the
    decisions.  Rows must describe polygons with >= 3 distinct vertices —
    degenerate shapes take the scalar fallback path in the caller, exactly
    like ``convex_intersect`` itself does.
    """
    n = len(avx)
    out = np.empty(n, dtype=bool)
    width = max(avx.shape[1], bvx.shape[1], 1)
    chunk = max(1, _SAT_CHUNK_ELEMS // (width * width))
    for lo in range(0, n, chunk):
        hi = min(n, lo + chunk)
        sep = _sat_separated(avx[lo:hi], avy[lo:hi], bvx[lo:hi], bvy[lo:hi], eps)
        sep |= _sat_separated(bvx[lo:hi], bvy[lo:hi], avx[lo:hi], avy[lo:hi], eps)
        out[lo:hi] = ~sep
    return out


def _sat_separated(
    px: np.ndarray, py: np.ndarray, qx: np.ndarray, qy: np.ndarray, eps: float
) -> np.ndarray:
    """True per row if some edge normal of ``p`` separates ``q`` from ``p``."""
    # Outward normal of CCW edge (a->b) is (by - ay, ax - bx).
    nx = py[:, 1:] - py[:, :-1]
    ny = px[:, :-1] - px[:, 1:]
    proj_p = px[:, None, :] * nx[:, :, None] + py[:, None, :] * ny[:, :, None]
    proj_q = qx[:, None, :] * nx[:, :, None] + qy[:, None, :] * ny[:, :, None]
    return (proj_q.min(axis=2) > proj_p.max(axis=2) + eps).any(axis=1)


def pack_convex_rows(
    vertex_lists: List[List[Coord]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack variable-length vertex lists for :func:`convex_intersect_bulk`.

    Returns ``(vx, vy, counts)`` where ``vx``/``vy`` are ``(n, W + 1)``
    matrices (``W`` = longest list) padded by repeating each row's first
    vertex, and ``counts`` holds the true vertex counts.
    """
    n = len(vertex_lists)
    counts = np.array([len(v) for v in vertex_lists], dtype=np.intp)
    width = int(counts.max()) + 1 if n else 1
    vx = np.zeros((n, width))
    vy = np.zeros((n, width))
    for i, verts in enumerate(vertex_lists):
        c = len(verts)
        if c == 0:
            continue
        row = np.asarray(verts, dtype=float)
        vx[i, :c] = row[:, 0]
        vy[i, :c] = row[:, 1]
        vx[i, c:] = row[0, 0]
        vy[i, c:] = row[0, 1]
    return vx, vy, counts


def polygons_intersect_fast(poly1: Polygon, poly2: Polygon) -> bool:
    """Vectorised exact intersection test (edge matrix + containment).

    Oracle-grade reference used by the dataset pipeline and the test
    suite; semantics match :func:`repro.exact.polygons_intersect_quadratic`.
    """
    if not poly1.mbr().intersects(poly2.mbr()):
        return False
    if edges_intersect_matrix_any(poly1, poly2):
        return True
    if poly2.mbr().contains_rect(poly1.mbr()):
        if poly2.contains_point(poly1.shell[0]):
            return True
    if poly1.mbr().contains_rect(poly2.mbr()):
        if poly1.contains_point(poly2.shell[0]):
            return True
    return False
