"""Distance join, polygon distances and k-NN queries."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import (
    DistanceJoinConfig,
    brute_force_distance_join,
    circle_distance,
    polygon_distance,
    rect_distance,
    segment_distance,
    within_distance_join,
)
from repro.datasets.relations import SpatialRelation, europe
from repro.geometry import Polygon, Rect
from repro.index import AccessCounter
from repro.index.knn import knn_query, nearest_query, point_rect_distance


def square(x, y, size=1.0):
    return Polygon([(x, y), (x + size, y), (x + size, y + size), (x, y + size)])


class TestPrimitiveDistances:
    def test_segment_distance_crossing(self):
        assert segment_distance((0, 0), (1, 1), (0, 1), (1, 0)) == 0.0

    def test_segment_distance_parallel(self):
        assert segment_distance((0, 0), (1, 0), (0, 1), (1, 1)) == pytest.approx(1.0)

    def test_segment_distance_collinear_gap(self):
        assert segment_distance((0, 0), (1, 0), (3, 0), (4, 0)) == pytest.approx(2.0)

    def test_segment_distance_symmetry(self):
        rng = random.Random(4)
        for _ in range(50):
            p = [(rng.random(), rng.random()) for _ in range(4)]
            d1 = segment_distance(p[0], p[1], p[2], p[3])
            d2 = segment_distance(p[2], p[3], p[0], p[1])
            assert d1 == pytest.approx(d2, abs=1e-12)

    def test_rect_distance(self):
        assert rect_distance(Rect(0, 0, 1, 1), Rect(2, 0, 3, 1)) == pytest.approx(1.0)
        assert rect_distance(Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)) == pytest.approx(
            math.sqrt(2)
        )
        assert rect_distance(Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)) == 0.0

    def test_circle_distance(self):
        assert circle_distance((0, 0), 1, (3, 0), 1) == pytest.approx(1.0)
        assert circle_distance((0, 0), 2, (3, 0), 2) == 0.0

    def test_polygon_distance_disjoint(self):
        a = square(0, 0)
        b = square(3, 0)
        assert polygon_distance(a, b) == pytest.approx(2.0)

    def test_polygon_distance_intersecting_zero(self):
        assert polygon_distance(square(0, 0), square(0.5, 0.5)) == 0.0

    def test_polygon_distance_containment_zero(self):
        outer = square(0, 0, 10)
        inner = square(4, 4, 1)
        assert polygon_distance(outer, inner) == 0.0

    def test_polygon_distance_diagonal(self):
        a = square(0, 0)
        b = square(2, 2)
        assert polygon_distance(a, b) == pytest.approx(math.sqrt(2))

    @settings(max_examples=30, deadline=None)
    @given(
        dx=st.floats(1.5, 10, allow_nan=False),
        dy=st.floats(0, 10, allow_nan=False),
    )
    def test_property_translated_squares(self, dx, dy):
        a = square(0, 0)
        b = square(dx, dy)
        gap_x = dx - 1
        gap_y = max(0.0, dy - 1)
        expected = math.hypot(gap_x, gap_y)
        assert polygon_distance(a, b) == pytest.approx(expected, abs=1e-9)


class TestDistanceJoin:
    def make_grid_relation(self, name, n, spacing, size=0.5):
        polys = [
            square(i * spacing, j * spacing, size)
            for i in range(n)
            for j in range(n)
        ]
        return SpatialRelation(name, polys)

    @pytest.mark.parametrize("epsilon", [0.0, 0.05, 0.3, 1.0])
    def test_matches_brute_force_grid(self, epsilon):
        rel_a = self.make_grid_relation("A", 4, 1.0)
        rel_b = self.make_grid_relation("B", 4, 1.0)
        got = sorted(within_distance_join(rel_a, rel_b, epsilon).id_pairs())
        expected = sorted(brute_force_distance_join(rel_a, rel_b, epsilon))
        assert got == expected

    @pytest.mark.parametrize("epsilon", [0.0, 0.02, 0.1])
    def test_matches_brute_force_cartographic(self, epsilon):
        rel_a = europe(size=30)
        rel_b = europe(seed=23, size=30)
        got = sorted(within_distance_join(rel_a, rel_b, epsilon).id_pairs())
        expected = sorted(brute_force_distance_join(rel_a, rel_b, epsilon))
        assert got == expected

    def test_filters_do_not_change_result(self):
        rel_a = europe(size=25)
        rel_b = europe(seed=31, size=25)
        eps = 0.05
        full = within_distance_join(rel_a, rel_b, eps)
        bare = within_distance_join(
            rel_a,
            rel_b,
            eps,
            DistanceJoinConfig(
                use_conservative_circle=False, use_progressive_circle=False
            ),
        )
        assert sorted(full.id_pairs()) == sorted(bare.id_pairs())
        # with filters on, some work is classified before the exact step
        assert full.stats.remaining_candidates <= bare.stats.remaining_candidates

    def test_epsilon_zero_equals_intersection_join(self):
        from repro.core.join import nested_loops_join

        rel_a = europe(size=25)
        rel_b = europe(seed=13, size=25)
        got = sorted(within_distance_join(rel_a, rel_b, 0.0).id_pairs())
        expected = sorted(nested_loops_join(rel_a, rel_b))
        assert got == expected

    def test_monotone_in_epsilon(self):
        rel_a = europe(size=20)
        rel_b = europe(seed=3, size=20)
        sizes = [
            len(within_distance_join(rel_a, rel_b, eps))
            for eps in (0.0, 0.05, 0.1, 0.4)
        ]
        assert sizes == sorted(sizes)

    def test_negative_epsilon_rejected(self):
        rel = europe(size=5)
        with pytest.raises(ValueError):
            within_distance_join(rel, rel, -0.1)

    def test_stats_add_up(self):
        rel_a = europe(size=25)
        rel_b = europe(seed=57, size=25)
        result = within_distance_join(rel_a, rel_b, 0.03)
        stats = result.stats
        assert (
            stats.filter_hits + stats.filter_false_hits + stats.remaining_candidates
            == stats.candidate_pairs
        )
        assert stats.exact_hits + stats.exact_false_hits == stats.remaining_candidates
        assert len(result) == stats.filter_hits + stats.exact_hits


class TestKNN:
    def build_tree(self, n=200, seed=2):
        rel = europe(size=n, seed=seed)
        return rel.build_rtree(max_entries=8), rel

    def test_point_rect_distance(self):
        r = Rect(0, 0, 1, 1)
        assert point_rect_distance((0.5, 0.5), r) == 0.0
        assert point_rect_distance((2.0, 0.5), r) == pytest.approx(1.0)
        assert point_rect_distance((2.0, 2.0), r) == pytest.approx(math.sqrt(2))

    def test_knn_matches_linear_scan(self):
        tree, rel = self.build_tree()
        rng = random.Random(8)
        for _ in range(10):
            p = (rng.random(), rng.random())
            got = knn_query(tree, p, 5)
            dists = sorted(point_rect_distance(p, obj.mbr) for obj in rel)
            for (d, _), expected in zip(got, dists[:5]):
                assert d == pytest.approx(expected, abs=1e-12)

    def test_knn_ordering_ascending(self):
        tree, _ = self.build_tree()
        got = knn_query(tree, (0.5, 0.5), 20)
        ds = [d for d, _ in got]
        assert ds == sorted(ds)

    def test_knn_k_larger_than_size(self):
        tree, rel = self.build_tree(n=10)
        got = knn_query(tree, (0.2, 0.2), 50)
        assert len(got) == len(rel)

    def test_knn_invalid_k(self):
        tree, _ = self.build_tree(n=5)
        with pytest.raises(ValueError):
            knn_query(tree, (0, 0), 0)

    def test_nearest_query(self):
        tree, rel = self.build_tree(n=50)
        result = nearest_query(tree, (0.5, 0.5))
        assert result is not None
        d, _ = result
        assert d == min(point_rect_distance((0.5, 0.5), o.mbr) for o in rel)

    def test_nearest_on_empty_tree(self):
        from repro.index import RStarTree

        assert nearest_query(RStarTree(), (0, 0)) is None

    def test_knn_page_accounting(self):
        tree, _ = self.build_tree()
        counter = AccessCounter()
        knn_query(tree, (0.5, 0.5), 3, counter)
        assert 0 < counter.node_visits <= tree.node_count()
