"""Tests for WKT relation I/O and the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets import SpatialRelation, cartographic_polygons
from repro.datasets.io import (
    load_relation,
    polygon_from_wkt,
    polygon_to_wkt,
    relations_equal,
    save_relation,
)
from repro.geometry import Polygon


class TestWKT:
    def test_roundtrip_simple_polygon(self):
        poly = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        again = polygon_from_wkt(polygon_to_wkt(poly))
        assert again.shell == poly.shell

    def test_roundtrip_with_hole(self):
        poly = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)],
            holes=[[(1, 1), (3, 1), (3, 3), (1, 3)]],
        )
        again = polygon_from_wkt(polygon_to_wkt(poly))
        assert again.area() == pytest.approx(poly.area())
        assert len(again.holes) == 1

    def test_parse_standard_wkt(self):
        poly = polygon_from_wkt("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))")
        assert poly.area() == pytest.approx(4.0)

    def test_parse_scientific_notation(self):
        poly = polygon_from_wkt("POLYGON ((0 0, 1e1 0, 10 1.5e1, 0 0))")
        assert poly.mbr().xmax == pytest.approx(10.0)

    def test_reject_non_polygon(self):
        with pytest.raises(ValueError):
            polygon_from_wkt("LINESTRING (0 0, 1 1)")

    def test_reject_malformed_pair(self):
        with pytest.raises(ValueError):
            polygon_from_wkt("POLYGON ((0 0 0, 1 1))")

    def test_relation_roundtrip(self, tmp_path):
        relation = SpatialRelation(
            "round-trip", cartographic_polygons(25, 30, seed=3)
        )
        path = tmp_path / "rel.wkt"
        save_relation(relation, path)
        loaded = load_relation(path)
        assert loaded.name == "round-trip"
        assert relations_equal(relation, loaded, tol=1e-6)

    def test_load_reports_line_numbers(self, tmp_path):
        path = tmp_path / "bad.wkt"
        path.write_text("POLYGON ((0 0, 1 0, 1 1, 0 0))\nGARBAGE\n")
        with pytest.raises(ValueError, match="bad.wkt:2"):
            load_relation(path)


class TestCLI:
    @pytest.fixture()
    def wkt_files(self, tmp_path):
        for name, seed in (("a", 11), ("b", 12)):
            rel = SpatialRelation(
                name, cartographic_polygons(25, 20, seed=seed)
            )
            save_relation(rel, tmp_path / f"{name}.wkt")
        return tmp_path / "a.wkt", tmp_path / "b.wkt"

    def test_generate_and_info(self, tmp_path, capsys):
        out = tmp_path / "gen.wkt"
        assert main(
            ["generate", "--objects", "15", "--vertices", "20",
             "--out", str(out), "--name", "gen-test"]
        ) == 0
        assert main(["info", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "gen-test" in captured
        assert "objects:  15" in captured

    def test_join_command(self, wkt_files, capsys):
        a, b = wkt_files
        assert main(
            ["join", str(a), str(b), "--exact", "vectorized"]
        ) == 0
        out = capsys.readouterr().out
        assert "result pairs" in out
        assert "identification rate" in out

    def test_join_within_predicate(self, wkt_files, capsys):
        a, b = wkt_files
        assert main(
            ["join", str(a), str(b), "--predicate", "within",
             "--exact", "vectorized"]
        ) == 0
        assert "within join" in capsys.readouterr().out

    def test_join_no_filter(self, wkt_files, capsys):
        a, b = wkt_files
        assert main(
            ["join", str(a), str(b), "--conservative", "none",
             "--progressive", "none", "--exact", "vectorized"]
        ) == 0
        out = capsys.readouterr().out
        assert "identification rate:    0%" in out

    def test_window_query_command(self, wkt_files, capsys):
        a, _b = wkt_files
        assert main(
            ["query", str(a), "--window", "0.1", "0.1", "0.6", "0.6"]
        ) == 0
        assert "window" in capsys.readouterr().out

    def test_point_query_command(self, wkt_files, capsys):
        a, _b = wkt_files
        assert main(["query", str(a), "--point", "0.5", "0.5"]) == 0
        assert "point" in capsys.readouterr().out

    def test_pairs_flag_lists_pairs(self, wkt_files, capsys):
        a, b = wkt_files
        main(["join", str(a), str(b), "--exact", "vectorized", "--pairs"])
        out = capsys.readouterr().out
        assert any("\t" in line for line in out.splitlines())
