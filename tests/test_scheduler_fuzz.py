"""Hypothesis fuzz: static and stealing schedulers are interchangeable.

For randomly generated *skewed* relations — the clustered hot-tile
generator concentrates most candidate pairs into one tile, the
stealing scheduler's reason to exist — the two schedulers must produce
the identical result pairs, pair order, and ``MultiStepStats`` at
worker counts {1, 2, 4} under **both** wire formats (columnar shared
memory and pickled slices).  Completion order is the only thing allowed
to differ; the tile-sorted merge must hide it completely.

Each example shares one :class:`JoinSession` across all of its joins so
the pool is forked once per worker count, not once per configuration;
``REPRO_PAR_QUICK=1`` shrinks the sweep for the CI quick job.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import clustered_relation_pair, stats_fingerprint
from repro.core import SCHEDULERS, JoinConfig
from repro.core.session import JoinSession

pytestmark = [pytest.mark.parallel, pytest.mark.slow]

QUICK = os.environ.get("REPRO_PAR_QUICK") == "1"
WORKERS = (1, 2) if QUICK else (1, 2, 4)
MAX_EXAMPLES = 2 if QUICK else 5


@given(
    seed=st.integers(min_value=0, max_value=10 ** 6),
    hot_fraction=st.sampled_from((0.6, 0.8, 0.9)),
    grid=st.sampled_from(((3, 3), (4, 2))),
)
@settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_schedulers_agree_on_skewed_relations(seed, hot_fraction, grid):
    rel_a, rel_b = clustered_relation_pair(
        seed, grid=grid, n_objects=10, hot_fraction=hot_fraction
    )
    base = JoinConfig(
        exact_method="vectorized",
        engine="batched",
        batch_size=16,
        grid=grid,
    )
    with JoinSession(config=base) as session:
        for workers in WORKERS:
            for columnar in (True, False):
                results = {}
                for scheduler in SCHEDULERS:
                    results[scheduler] = session.join(
                        rel_a,
                        rel_b,
                        config=replace(
                            base,
                            workers=workers,
                            columnar=columnar,
                            scheduler=scheduler,
                        ),
                    )
                label = (
                    f"seed={seed} workers={workers} columnar={columnar}"
                )
                static, stealing = (
                    results["static"], results["stealing"]
                )
                assert static.id_pairs() == stealing.id_pairs(), label
                assert stats_fingerprint(static.stats) == (
                    stats_fingerprint(stealing.stats)
                ), label
                static.stats.check_invariants()
                stealing.stats.check_invariants()
                assert static.steal_count == 0, label
                expected_wire = (
                    "columnar-shm" if columnar else "pickled-slices"
                )
                assert stealing.wire_format == expected_wire, label
