"""Reporting sweep vs. the quadratic oracle."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact.reporting_sweep import (
    polygon_pair_intersections,
    quadratic_intersections,
    report_intersections,
)
from repro.geometry import Polygon


def rand_segments(n, seed, span=1.0):
    rng = random.Random(seed)
    segs = []
    for _ in range(n):
        x, y = rng.random(), rng.random()
        segs.append(
            (
                (x, y),
                (x + rng.uniform(-span, span), y + rng.uniform(-span, span)),
            )
        )
    return segs


def pair_set(triples):
    return {(i, j) for _, i, j in triples}


class TestReporting:
    def test_empty(self):
        assert report_intersections([]) == []

    def test_single_crossing(self):
        segs = [((0, 0), (1, 1)), ((0, 1), (1, 0))]
        out = report_intersections(segs)
        assert len(out) == 1
        point, i, j = out[0]
        assert (i, j) == (0, 1)
        assert point[0] == pytest.approx(0.5)
        assert point[1] == pytest.approx(0.5)

    def test_disjoint_segments(self):
        segs = [((0, 0), (1, 0)), ((0, 1), (1, 1)), ((0, 2), (1, 2))]
        assert report_intersections(segs) == []

    def test_shared_endpoint_included_or_not(self):
        segs = [((0, 0), (1, 1)), ((1, 1), (2, 0))]
        with_ep = report_intersections(segs, include_endpoints=True)
        without_ep = report_intersections(segs, include_endpoints=False)
        assert pair_set(with_ep) == {(0, 1)}
        assert without_ep == []

    def test_collinear_overlap_reported(self):
        segs = [((0, 0), (2, 0)), ((1, 0), (3, 0))]
        out = report_intersections(segs)
        assert pair_set(out) == {(0, 1)}

    def test_vertical_segments(self):
        segs = [((0.5, -1), (0.5, 1)), ((0, 0), (1, 0))]
        out = report_intersections(segs)
        assert len(out) == 1
        assert out[0][0] == pytest.approx((0.5, 0.0))

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_quadratic_oracle(self, seed):
        segs = rand_segments(40, seed, span=0.4)
        got = pair_set(report_intersections(segs))
        expected = pair_set(quadratic_intersections(segs))
        assert got == expected

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_oracle_without_endpoints(self, seed):
        segs = rand_segments(30, seed + 50, span=0.5)
        got = pair_set(report_intersections(segs, include_endpoints=False))
        expected = pair_set(quadratic_intersections(segs, include_endpoints=False))
        assert got == expected

    def test_star_configuration(self):
        """n segments through one point: all pairs intersect there."""
        n = 8
        segs = []
        for k in range(n):
            angle = math.pi * k / n
            dx, dy = math.cos(angle), math.sin(angle)
            segs.append(((0.5 - dx, 0.5 - dy), (0.5 + dx, 0.5 + dy)))
        out = report_intersections(segs)
        assert len(out) == n * (n - 1) // 2
        for point, _, _ in out:
            assert point == pytest.approx((0.5, 0.5))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 100_000), n=st.integers(2, 25))
    def test_property_matches_oracle(self, seed, n):
        segs = rand_segments(n, seed, span=0.6)
        assert pair_set(report_intersections(segs)) == pair_set(
            quadratic_intersections(segs)
        )


class TestPolygonPairs:
    def test_square_cross(self):
        a = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        b = Polygon([(1, 1), (3, 1), (3, 3), (1, 3)])
        points = polygon_pair_intersections(a.edges(), b.edges())
        # the two shells cross at (2,1) and (1,2)
        rounded = sorted((round(x, 9), round(y, 9)) for x, y in points)
        assert rounded == [(1.0, 2.0), (2.0, 1.0)]

    def test_disjoint_polygons_no_points(self):
        a = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        b = Polygon([(5, 5), (6, 5), (6, 6), (5, 6)])
        assert polygon_pair_intersections(a.edges(), b.edges()) == []

    def test_same_layer_crossings_ignored(self):
        """A self-intersecting edge set on one side must not report."""
        bowtie_edges = [((0, 0), (1, 1)), ((0, 1), (1, 0))]
        other = [((5, 5), (6, 6))]
        assert polygon_pair_intersections(bowtie_edges, other) == []
