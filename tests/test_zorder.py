"""Tests for the z-order (space-filling-curve) MBR-join baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import uniform_rect_items
from repro.geometry import Rect
from repro.index import (
    ZOrderIndex,
    build_zorder_indexes,
    interleave_bits,
    nested_loops_mbr_join,
    z_cells_for_rect,
    zorder_mbr_join,
)


class TestZValue:
    def test_origin(self):
        assert interleave_bits(0, 0, 4) == 0

    def test_known_interleavings(self):
        # x=1,y=0 -> bit 0; x=0,y=1 -> bit 1.
        assert interleave_bits(1, 0, 4) == 1
        assert interleave_bits(0, 1, 4) == 2
        assert interleave_bits(1, 1, 4) == 3
        assert interleave_bits(2, 0, 4) == 4

    def test_z_order_locality(self):
        # The four cells of a quadrant are contiguous in z.
        zs = sorted(
            interleave_bits(x, y, 4) for x in (0, 1) for y in (0, 1)
        )
        assert zs == [0, 1, 2, 3]

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_bijective_in_range(self, x, y):
        z = interleave_bits(x, y, 8)
        assert 0 <= z < 1 << 16


class TestZCells:
    def test_full_space_is_one_cell(self):
        cells = z_cells_for_rect(Rect(0, 0, 1, 1), resolution=6)
        assert cells == [(0, (1 << 12) - 1)]

    def test_cell_budget_respected(self):
        cells = z_cells_for_rect(
            Rect(0.1, 0.1, 0.6, 0.35), resolution=8, max_cells=4
        )
        assert 1 <= len(cells) <= 4

    def test_intervals_sorted_and_disjoint(self):
        cells = z_cells_for_rect(
            Rect(0.3, 0.2, 0.7, 0.9), resolution=8, max_cells=8
        )
        for (lo1, hi1), (lo2, hi2) in zip(cells, cells[1:]):
            assert hi1 < lo2

    def test_cover_is_conservative(self):
        # Every grid cell overlapping the rect must be inside some interval.
        res = 5
        n = 1 << res
        rect = Rect(0.22, 0.4, 0.55, 0.77)
        cells = z_cells_for_rect(rect, resolution=res, max_cells=6)

        def covered(z):
            return any(lo <= z <= hi for lo, hi in cells)

        for gx in range(n):
            for gy in range(n):
                cell_rect = Rect(gx / n, gy / n, (gx + 1) / n, (gy + 1) / n)
                if cell_rect.intersection_area(rect) > 0:
                    assert covered(interleave_bits(gx, gy, res))


class TestZOrderJoin:
    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=12, deadline=None)
    def test_matches_nested_loops(self, seed):
        items_a = uniform_rect_items(120, seed=seed, avg_extent=0.05)
        items_b = uniform_rect_items(120, seed=seed + 999, avg_extent=0.05)
        za, zb = build_zorder_indexes(items_a, items_b)
        got = set(zorder_mbr_join(za, zb))
        want = set(nested_loops_mbr_join(items_a, items_b))
        assert got == want

    def test_empty_indexes(self):
        za, zb = build_zorder_indexes([], [])
        assert list(zorder_mbr_join(za, zb)) == []

    def test_mismatched_grids_rejected(self):
        items = uniform_rect_items(10, seed=1)
        za = ZOrderIndex(items, resolution=8)
        zb = ZOrderIndex(items, resolution=10)
        with pytest.raises(ValueError):
            list(zorder_mbr_join(za, zb))

    def test_more_cells_tighter_candidates(self):
        # With more cells per object the z-cover gets tighter; the final
        # result is identical either way (the MBR test removes the rest).
        items_a = uniform_rect_items(150, seed=3, avg_extent=0.04)
        items_b = uniform_rect_items(150, seed=4, avg_extent=0.04)
        za1, zb1 = build_zorder_indexes(items_a, items_b, max_cells=1)
        za4, zb4 = build_zorder_indexes(items_a, items_b, max_cells=4)
        got1 = set(zorder_mbr_join(za1, zb1))
        got4 = set(zorder_mbr_join(za4, zb4))
        assert got1 == got4
        assert len(za4) >= len(za1)

    def test_on_cartographic_data(self, tiny_series):
        items_a = tiny_series.relation_a.mbr_items()
        items_b = tiny_series.relation_b.mbr_items()
        za, zb = build_zorder_indexes(items_a, items_b)
        got = {
            (a.oid, b.oid) for a, b in zorder_mbr_join(za, zb)
        }
        want = {
            (a.oid, b.oid)
            for a, b in nested_loops_mbr_join(items_a, items_b)
        }
        assert got == want
