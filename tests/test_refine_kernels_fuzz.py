"""Hypothesis fuzz: refinement fastops kernels ≡ scalar geometry predicates.

The batched refinement pipeline is only correct if its bulk kernels
decide *exactly* like the scalar predicates they vectorise, including
on the degenerate geometry the differential suites love: collinear
segments, shared endpoints, boundary points, horizontal edges, holes.

Coordinates are drawn from a coarse ``1/8`` grid (mixed with arbitrary
floats) so exactly-collinear, exactly-touching, and exactly-overlapping
configurations occur constantly rather than almost never.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Polygon
from repro.geometry.fastops import (
    EdgeArrays,
    edge_matrix_intersect_any,
    edges_intersect_matrix_any,
    edges_overlapping_rect_mask,
    points_in_polygons_bulk,
    segments_intersect_bulk,
)
from repro.geometry.segment import segments_intersect

# Snapped coordinates make collinearity and touching exact; the float
# component exercises general position.
snapped = st.integers(min_value=-8, max_value=16).map(lambda n: n / 8.0)
coord = st.one_of(
    snapped,
    st.floats(min_value=-1.0, max_value=2.0, allow_nan=False,
              allow_infinity=False),
)
point = st.tuples(coord, coord)
segment = st.tuples(point, point)


@settings(max_examples=300, deadline=None)
@given(st.lists(st.tuples(segment, segment), min_size=1, max_size=32))
def test_segments_intersect_bulk_matches_scalar(cases):
    p1 = np.array([a for (a, _), _ in cases])
    p2 = np.array([b for (_, b), _ in cases])
    q1 = np.array([a for _, (a, _) in cases])
    q2 = np.array([b for _, (_, b) in cases])
    bulk = segments_intersect_bulk(p1, p2, q1, q2)
    for i, ((pa, pb), (qa, qb)) in enumerate(cases):
        assert bool(bulk[i]) == segments_intersect(pa, pb, qa, qb), (
            f"row {i}: {pa}-{pb} vs {qa}-{qb}"
        )


def test_segments_intersect_bulk_edge_cases():
    """Hand-picked collinear/touching/degenerate rows."""
    cases = [
        # collinear overlap
        (((0, 0), (1, 0)), ((0.5, 0), (2, 0))),
        # collinear, disjoint
        (((0, 0), (1, 0)), ((1.5, 0), (2, 0))),
        # endpoint touches endpoint
        (((0, 0), (1, 0)), ((1, 0), (1, 1))),
        # endpoint touches interior (T junction)
        (((0, 0), (2, 0)), ((1, 0), (1, 1))),
        # proper crossing
        (((0, 0), (1, 1)), ((0, 1), (1, 0))),
        # parallel, offset
        (((0, 0), (1, 0)), ((0, 0.25), (1, 0.25))),
        # degenerate (point) segment on the other segment
        (((0.5, 0), (0.5, 0)), ((0, 0), (1, 0))),
        # degenerate segment off the other segment
        (((0.5, 0.5), (0.5, 0.5)), ((0, 0), (1, 0))),
        # identical segments
        (((0, 0), (1, 1)), ((0, 0), (1, 1))),
        # near-miss within epsilon slack
        (((0, 0), (1, 0)), ((1 + 1e-13, 0), (2, 0))),
    ]
    p1 = np.array([a for (a, _), _ in cases], dtype=float)
    p2 = np.array([b for (_, b), _ in cases], dtype=float)
    q1 = np.array([a for _, (a, _) in cases], dtype=float)
    q2 = np.array([b for _, (_, b) in cases], dtype=float)
    bulk = segments_intersect_bulk(p1, p2, q1, q2)
    for i, ((pa, pb), (qa, qb)) in enumerate(cases):
        assert bool(bulk[i]) == segments_intersect(pa, pb, qa, qb), (
            f"row {i}: {pa}-{pb} vs {qa}-{qb}"
        )


# -- point in polygon -------------------------------------------------------


def _ccw_square(cx, cy, half):
    return [
        (cx - half, cy - half),
        (cx + half, cy - half),
        (cx + half, cy + half),
        (cx - half, cy + half),
    ]


polygon_strategy = st.one_of(
    # Axis-aligned squares snapped to the grid: boundary hits galore.
    st.tuples(snapped, snapped, st.sampled_from([0.125, 0.25, 0.5])).map(
        lambda t: Polygon(_ccw_square(t[0], t[1], t[2]))
    ),
    # Irregular simple polygons from sorted angles around a centre.
    st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=3, max_value=12),
    ).map(lambda t: _star(t[0], t[1])),
    # A square with a hole: even-odd parity across rings.
    st.tuples(snapped, snapped).map(
        lambda t: Polygon(
            _ccw_square(t[0], t[1], 0.5),
            [_ccw_square(t[0], t[1], 0.25)],
        )
    ),
)


def _star(seed, n):
    import math
    import random

    rng = random.Random(seed)
    pts = []
    for i in range(n):
        angle = 2 * math.pi * i / n
        r = 0.1 + 0.4 * rng.random()
        pts.append(
            (0.5 + r * math.cos(angle), 0.5 + r * math.sin(angle))
        )
    return Polygon(pts)


def _query_points(poly, extra):
    """Boundary-heavy probes: vertices, edge midpoints, then fuzz points."""
    pts = []
    for ring in poly.rings():
        n = len(ring)
        for i in range(min(n, 4)):
            a = ring[i]
            b = ring[(i + 1) % n]
            pts.append(a)
            pts.append(((a[0] + b[0]) / 2, (a[1] + b[1]) / 2))
    pts.extend(extra)
    return pts


@settings(max_examples=200, deadline=None)
@given(polygon_strategy, st.lists(point, min_size=1, max_size=8))
def test_points_in_polygons_bulk_matches_contains_point(poly, extra):
    pts = _query_points(poly, extra)
    edges = EdgeArrays(poly)
    k = len(pts)
    m = len(edges)
    px = np.array([p[0] for p in pts])
    py = np.array([p[1] for p in pts])
    qidx = np.repeat(np.arange(k, dtype=np.intp), m)
    ex1 = np.tile(edges.x1, k)
    ey1 = np.tile(edges.y1, k)
    ex2 = np.tile(edges.x2, k)
    ey2 = np.tile(edges.y2, k)
    rect = poly.mbr()
    mbrs = np.tile(
        np.array([(rect.xmin, rect.ymin, rect.xmax, rect.ymax)]), (k, 1)
    )
    bulk = points_in_polygons_bulk(px, py, qidx, ex1, ey1, ex2, ey2, mbrs)
    for i, p in enumerate(pts):
        assert bool(bulk[i]) == poly.contains_point(p), f"point {p} of {poly}"


def test_points_in_polygons_bulk_mixed_polygons_one_call():
    """One flattened call over differently-shaped polygons per query."""
    polys = [
        Polygon(_ccw_square(0.0, 0.0, 0.5)),
        _star(7, 9),
        Polygon(_ccw_square(0.0, 0.0, 0.5), [_ccw_square(0.0, 0.0, 0.25)]),
    ]
    probes = [(0.0, 0.0), (0.5, 0.5), (0.1, 0.1), (-0.5, -0.5), (2.0, 2.0)]
    queries = [(poly, p) for poly in polys for p in probes]
    px = np.array([p[0] for _, p in queries])
    py = np.array([p[1] for _, p in queries])
    parts = {name: [] for name in ("x1", "y1", "x2", "y2")}
    qidx_parts = []
    mbr_rows = []
    for q, (poly, _) in enumerate(queries):
        edges = EdgeArrays(poly)
        for name in parts:
            parts[name].append(getattr(edges, name))
        qidx_parts.append(np.full(len(edges), q, dtype=np.intp))
        rect = poly.mbr()
        mbr_rows.append((rect.xmin, rect.ymin, rect.xmax, rect.ymax))
    bulk = points_in_polygons_bulk(
        px,
        py,
        np.concatenate(qidx_parts),
        *(np.concatenate(parts[name]) for name in ("x1", "y1", "x2", "y2")),
        np.array(mbr_rows),
    )
    for i, (poly, p) in enumerate(queries):
        assert bool(bulk[i]) == poly.contains_point(p)


# -- ring simplicity --------------------------------------------------------


def _ring_self_intersects_scalar(ring):
    """The pair loop ``Polygon.is_simple`` used before the bulk kernel."""
    n = len(ring)
    for i in range(n):
        a1, a2 = ring[i], ring[(i + 1) % n]
        for j in range(i + 1, n):
            if j == i or (j + 1) % n == i or (i + 1) % n == j:
                continue
            if segments_intersect(a1, a2, ring[j], ring[(j + 1) % n]):
                return True
    return False


@settings(max_examples=150, deadline=None)
@given(st.lists(point, min_size=3, max_size=12, unique=True))
def test_ring_self_intersects_bulk_matches_scalar(ring):
    from repro.geometry.fastops import ring_self_intersects_bulk

    assert ring_self_intersects_bulk(ring) == _ring_self_intersects_scalar(
        ring
    )


def test_is_simple_known_shapes():
    assert Polygon(_ccw_square(0.0, 0.0, 0.5)).is_simple()
    bowtie = Polygon.from_normalized([(0, 0), (1, 1), (1, 0), (0, 1)])
    assert not bowtie.is_simple()
    assert _star(3, 11).is_simple()


# -- pruning soundness ------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)
def test_pruned_edge_matrix_equals_full_matrix(seed_a, seed_b):
    """MBR-clip pruning must never change the edge-matrix decision.

    This is the exact pruning the batched refinement applies before
    :func:`edge_matrix_intersect_any`; the pruned evaluation must equal
    :func:`edges_intersect_matrix_any` on the full edge sets.
    """
    poly_a = _star(seed_a, 3 + seed_a % 9)
    poly_b = _star(seed_b, 3 + seed_b % 7).translated(
        (seed_b % 5) * 0.2 - 0.4, (seed_a % 5) * 0.2 - 0.4
    )
    ea = EdgeArrays(poly_a)
    eb = EdgeArrays(poly_b)
    ra, rb = poly_a.mbr(), poly_b.mbr()
    margin = 1e-9
    xmin = max(ra.xmin, rb.xmin) - margin
    ymin = max(ra.ymin, rb.ymin) - margin
    xmax = min(ra.xmax, rb.xmax) + margin
    ymax = min(ra.ymax, rb.ymax) + margin
    mask_a = edges_overlapping_rect_mask(
        ea.x1, ea.y1, ea.x2, ea.y2, xmin, ymin, xmax, ymax
    )
    mask_b = edges_overlapping_rect_mask(
        eb.x1, eb.y1, eb.x2, eb.y2, xmin, ymin, xmax, ymax
    )
    full = edges_intersect_matrix_any(poly_a, poly_b)
    if mask_a.any() and mask_b.any():
        pruned = edge_matrix_intersect_any(
            ea.x1[mask_a], ea.y1[mask_a], ea.x2[mask_a], ea.y2[mask_a],
            eb.x1[mask_b], eb.y1[mask_b], eb.x2[mask_b], eb.y2[mask_b],
        )
    else:
        pruned = False
    assert pruned == full
