"""k-nearest-neighbour search on the R*-tree.

The paper names nearest-neighbour queries among the basic operations of
a spatial DBS (§2: "point queries, window queries, nearest neighbor
queries, and spatial joins").  This module provides the classic
best-first (priority-queue) k-NN traversal of [HS 95-style] over the
repository's R*-tree, with the same page-access accounting as the other
query paths.

Distances are measured between the query point and entry rectangles
(MINDIST); callers needing exact object distances refine the returned
candidate order (see :mod:`repro.core.distance`).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, List, Optional, Tuple

from ..geometry import Coord, Rect
from .pagemodel import AccessCounter
from .rstar import Node, RStarTree


def point_rect_distance(p: Coord, rect: Rect) -> float:
    """MINDIST: Euclidean distance from a point to a rectangle (0 inside)."""
    dx = max(rect.xmin - p[0], 0.0, p[0] - rect.xmax)
    dy = max(rect.ymin - p[1], 0.0, p[1] - rect.ymax)
    return (dx * dx + dy * dy) ** 0.5


def validate_k(k: int) -> int:
    """Boundary validation of a neighbour count.

    Raises ``ValueError`` naming the offending value for ``k < 1`` or a
    non-integer ``k`` (``bool`` included — ``True`` is a valid ``int``
    but never a deliberate neighbour count), so callers — including the
    CLI ``knn`` command — fail at the argument boundary instead of
    obscurely downstream.
    """
    if isinstance(k, bool) or not isinstance(k, int):
        raise ValueError(f"k must be an integer, got {k!r}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return k


def knn_query(
    tree: RStarTree,
    point: Coord,
    k: int,
    counter: Optional[AccessCounter] = None,
) -> List[Tuple[float, Any]]:
    """The ``k`` items with smallest MINDIST to ``point``.

    Returns ``(distance, item)`` pairs in ascending distance order.
    Best-first search: a single priority queue over nodes and entries
    guarantees no node is opened unless it could still contribute.
    """
    k = validate_k(k)
    if tree.size == 0:
        return []
    # tie-break heap entries by an insertion counter: items may not be
    # comparable with each other.
    tiebreak = itertools.count()
    heap: List[Tuple[float, int, bool, Any]] = [
        (0.0, next(tiebreak), False, tree.root)
    ]
    out: List[Tuple[float, Any]] = []
    while heap and len(out) < k:
        dist, _, is_entry, payload = heapq.heappop(heap)
        if is_entry:
            out.append((dist, payload))
            continue
        node: Node = payload
        if counter is not None:
            counter.visit(node.page_id)
        if node.is_leaf:
            for entry in node.entries:
                heapq.heappush(
                    heap,
                    (
                        point_rect_distance(point, entry.rect),
                        next(tiebreak),
                        True,
                        entry.item,
                    ),
                )
        else:
            for child in node.children:
                heapq.heappush(
                    heap,
                    (
                        point_rect_distance(point, child.mbr()),
                        next(tiebreak),
                        False,
                        child,
                    ),
                )
    return out


def nearest_query(
    tree: RStarTree, point: Coord, counter: Optional[AccessCounter] = None
) -> Optional[Tuple[float, Any]]:
    """The single nearest item, or None for an empty tree."""
    result = knn_query(tree, point, 1, counter)
    return result[0] if result else None


def knn_query_exact(
    tree: RStarTree,
    point: Coord,
    k: int,
    exact_distance,
    counter: Optional[AccessCounter] = None,
) -> List[Tuple[float, Any]]:
    """k-NN refined by an exact distance function (filter-refine k-NN).

    ``exact_distance(point, item) -> float`` supplies the true distance
    (e.g. point-to-polygon via :func:`repro.core.distance`).  The search
    is the classic incremental best-first scheme: because MINDIST to an
    item's MBR lower-bounds its exact distance, the scan can stop as
    soon as the next MINDIST exceeds the k-th best exact distance seen —
    the multi-step principle (cheap bound first, exact geometry last)
    applied to nearest-neighbour search.
    """
    k = validate_k(k)
    if tree.size == 0:
        return []
    tiebreak = itertools.count()
    heap: List[Tuple[float, int, bool, Any]] = [
        (0.0, next(tiebreak), False, tree.root)
    ]
    best: List[Tuple[float, int, Any]] = []  # max-heap via negated dist
    while heap:
        mindist, _, is_entry, payload = heapq.heappop(heap)
        if len(best) == k and mindist > -best[0][0]:
            break  # no remaining candidate can beat the k-th exact dist
        if is_entry:
            exact = exact_distance(point, payload)
            heapq.heappush(best, (-exact, next(tiebreak), payload))
            if len(best) > k:
                heapq.heappop(best)
            continue
        node: Node = payload
        if counter is not None:
            counter.visit(node.page_id)
        if node.is_leaf:
            for entry in node.entries:
                heapq.heappush(
                    heap,
                    (
                        point_rect_distance(point, entry.rect),
                        next(tiebreak),
                        True,
                        entry.item,
                    ),
                )
        else:
            for child in node.children:
                heapq.heappush(
                    heap,
                    (
                        point_rect_distance(point, child.mbr()),
                        next(tiebreak),
                        False,
                        child,
                    ),
                )
    return sorted(
        ((-neg, item) for neg, _, item in best), key=lambda t: t[0]
    )
