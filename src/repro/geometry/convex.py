"""Convex geometry: hulls, intersection tests, clipping, calipers.

The geometric filter of the paper works almost entirely on convex
conservative approximations (§3.2), so fast convex–convex predicates are
the workhorse of step 2.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from .predicates import EPSILON, Coord, cross, polygon_signed_area
from .rectangle import Rect


def convex_hull(points: Sequence[Coord]) -> List[Coord]:
    """Convex hull in CCW order (Andrew's monotone chain, O(n log n)).

    Collinear points on the hull boundary are dropped; the result has at
    least one point (degenerate inputs collapse to fewer than 3 vertices).
    """
    pts = sorted(set((float(x), float(y)) for x, y in points))
    if len(pts) <= 2:
        return list(pts)

    lower: List[Coord] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= EPSILON:
            lower.pop()
        lower.append(p)
    upper: List[Coord] = []
    for p in reversed(pts):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= EPSILON:
            upper.pop()
        upper.append(p)
    return lower[:-1] + upper[:-1]


def convex_contains_point(hull: Sequence[Coord], p: Coord) -> bool:
    """True if ``p`` is inside or on the CCW convex polygon ``hull``."""
    n = len(hull)
    if n == 0:
        return False
    if n == 1:
        return (
            abs(p[0] - hull[0][0]) <= EPSILON and abs(p[1] - hull[0][1]) <= EPSILON
        )
    if n == 2:
        from .predicates import on_segment, orientation

        return orientation(hull[0], p, hull[1]) == 0 and on_segment(
            hull[0], p, hull[1]
        )
    for i in range(n):
        a = hull[i]
        b = hull[(i + 1) % n]
        if cross(a, b, p) < -EPSILON:
            return False
    return True


def convex_intersect(poly1: Sequence[Coord], poly2: Sequence[Coord]) -> bool:
    """Separating-axis intersection test for two convex CCW polygons.

    Returns True iff the closed polygons share at least one point.  This
    is the O(n+m)-axes test used for every conservative-approximation
    filter predicate (RMBR, 4-C, 5-C, CH pairs).
    """
    if len(poly1) < 3 or len(poly2) < 3:
        # Degenerate: fall back to clipping-based area test via bounding box.
        return _degenerate_intersect(poly1, poly2)
    for poly_a, poly_b in ((poly1, poly2), (poly2, poly1)):
        n = len(poly_a)
        for i in range(n):
            ax, ay = poly_a[i]
            bx, by = poly_a[(i + 1) % n]
            # Outward normal of CCW edge (a->b) is (dy, -dx).
            nx = by - ay
            ny = ax - bx
            # poly_a lies entirely on <= side of max projection of itself;
            # separation if min projection of poly_b exceeds max of poly_a.
            max_a = max(px * nx + py * ny for px, py in poly_a)
            min_b = min(px * nx + py * ny for px, py in poly_b)
            if min_b > max_a + EPSILON:
                return False
    return True


def _degenerate_intersect(poly1: Sequence[Coord], poly2: Sequence[Coord]) -> bool:
    from .segment import segments_intersect

    if not poly1 or not poly2:
        return False
    if len(poly1) == 1:
        return convex_contains_point(poly2, poly1[0])
    if len(poly2) == 1:
        return convex_contains_point(poly1, poly2[0])
    if len(poly1) == 2 and len(poly2) == 2:
        return segments_intersect(poly1[0], poly1[1], poly2[0], poly2[1])
    seg, poly = (poly1, poly2) if len(poly1) == 2 else (poly2, poly1)
    if convex_contains_point(poly, seg[0]) or convex_contains_point(poly, seg[1]):
        return True
    n = len(poly)
    return any(
        segments_intersect(seg[0], seg[1], poly[i], poly[(i + 1) % n])
        for i in range(n)
    )


def clip_convex(subject: Sequence[Coord], clip: Sequence[Coord]) -> List[Coord]:
    """Sutherland–Hodgman clip of convex ``subject`` by convex CCW ``clip``.

    Returns the intersection polygon (possibly empty).  Both inputs must
    be convex; the result is convex.
    """
    output = list(subject)
    n = len(clip)
    for i in range(n):
        if not output:
            return []
        a = clip[i]
        b = clip[(i + 1) % n]
        input_pts = output
        output = []
        m = len(input_pts)
        for j in range(m):
            cur = input_pts[j]
            nxt = input_pts[(j + 1) % m]
            cur_in = cross(a, b, cur) >= -EPSILON
            nxt_in = cross(a, b, nxt) >= -EPSILON
            if cur_in:
                output.append(cur)
                if not nxt_in:
                    ip = _line_seg_intersection(a, b, cur, nxt)
                    if ip is not None:
                        output.append(ip)
            elif nxt_in:
                ip = _line_seg_intersection(a, b, cur, nxt)
                if ip is not None:
                    output.append(ip)
    return output


def _line_seg_intersection(
    a: Coord, b: Coord, p: Coord, q: Coord
) -> Optional[Coord]:
    """Intersection of infinite line ``a-b`` with segment ``p-q``."""
    dax = b[0] - a[0]
    day = b[1] - a[1]
    dpx = q[0] - p[0]
    dpy = q[1] - p[1]
    denom = dpx * day - dpy * dax
    if abs(denom) <= EPSILON:
        return None
    t = ((a[0] - p[0]) * day - (a[1] - p[1]) * dax) / denom
    return (p[0] + t * dpx, p[1] + t * dpy)


def convex_intersection_area(
    poly1: Sequence[Coord], poly2: Sequence[Coord]
) -> float:
    """Area of the intersection of two convex CCW polygons."""
    if len(poly1) < 3 or len(poly2) < 3:
        return 0.0
    inter = clip_convex(poly1, poly2)
    if len(inter) < 3:
        return 0.0
    return abs(polygon_signed_area(inter))


def clip_convex_to_rect(poly: Sequence[Coord], rect: Rect) -> List[Coord]:
    """Clip a convex polygon to a rectangle."""
    return clip_convex(poly, list(rect.corners()))


def min_area_rotated_rect(
    points: Sequence[Coord],
) -> Tuple[List[Coord], float, float]:
    """Minimum-area enclosing rotated rectangle by rotating calipers.

    Returns ``(corners_ccw, area, angle)`` where ``angle`` is the rotation
    of the rectangle's base edge.  The optimal rectangle has one side
    collinear with a hull edge, so scanning the hull edges suffices.
    """
    hull = convex_hull(points)
    if len(hull) == 0:
        raise ValueError("min_area_rotated_rect: no points")
    if len(hull) == 1:
        p = hull[0]
        return [p, p, p, p], 0.0, 0.0
    if len(hull) == 2:
        (x1, y1), (x2, y2) = hull
        return [(x1, y1), (x2, y2), (x2, y2), (x1, y1)], 0.0, math.atan2(
            y2 - y1, x2 - x1
        )

    best_area = math.inf
    best: Tuple[List[Coord], float] = ([], 0.0)
    n = len(hull)
    for i in range(n):
        ax, ay = hull[i]
        bx, by = hull[(i + 1) % n]
        theta = math.atan2(by - ay, bx - ax)
        cos_t = math.cos(-theta)
        sin_t = math.sin(-theta)
        xs: List[float] = []
        ys: List[float] = []
        for px, py in hull:
            xs.append(px * cos_t - py * sin_t)
            ys.append(px * sin_t + py * cos_t)
        xmin, xmax = min(xs), max(xs)
        ymin, ymax = min(ys), max(ys)
        area = (xmax - xmin) * (ymax - ymin)
        if area < best_area:
            best_area = area
            cos_b = math.cos(theta)
            sin_b = math.sin(theta)
            corners = [
                (x * cos_b - y * sin_b, x * sin_b + y * cos_b)
                for x, y in (
                    (xmin, ymin),
                    (xmax, ymin),
                    (xmax, ymax),
                    (xmin, ymax),
                )
            ]
            best = (corners, theta)
    return best[0], best_area, best[1]


def convex_area(poly: Sequence[Coord]) -> float:
    """Area of a convex CCW polygon."""
    return abs(polygon_signed_area(poly))
