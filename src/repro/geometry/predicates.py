"""Low-level geometric predicates.

These are the primitives everything else in :mod:`repro.geometry` is built
on.  They operate on plain ``(x, y)`` tuples so that callers never pay an
object-construction cost in inner loops (the exact-geometry processors of
the paper execute millions of them).

All predicates use a relative/absolute epsilon scheme rather than exact
arithmetic; the data spaces used in this reproduction are unit-scaled, so
a fixed absolute epsilon is adequate and mirrors the float arithmetic the
original system used.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

Coord = Tuple[float, float]

#: Absolute tolerance used by the predicates.  The data space is the unit
#: square; 1e-12 is far below any meaningful feature size while staying
#: well above double-precision noise for coordinates of magnitude ~1.
EPSILON = 1e-12


def orientation(p: Coord, q: Coord, r: Coord) -> int:
    """Return the orientation of the ordered triple ``(p, q, r)``.

    * ``+1`` — counter-clockwise (left turn)
    * ``-1`` — clockwise (right turn)
    * ``0``  — collinear (within :data:`EPSILON`)
    """
    cross = (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])
    if cross > EPSILON:
        return 1
    if cross < -EPSILON:
        return -1
    return 0


def cross(o: Coord, a: Coord, b: Coord) -> float:
    """Signed cross product of vectors ``o->a`` and ``o->b``."""
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def dot(o: Coord, a: Coord, b: Coord) -> float:
    """Dot product of vectors ``o->a`` and ``o->b``."""
    return (a[0] - o[0]) * (b[0] - o[0]) + (a[1] - o[1]) * (b[1] - o[1])


def distance(a: Coord, b: Coord) -> float:
    """Euclidean distance between two points."""
    return math.hypot(b[0] - a[0], b[1] - a[1])


def distance_sq(a: Coord, b: Coord) -> float:
    """Squared euclidean distance (avoids the sqrt in hot loops)."""
    dx = b[0] - a[0]
    dy = b[1] - a[1]
    return dx * dx + dy * dy


def on_segment(p: Coord, q: Coord, r: Coord) -> bool:
    """True if collinear point ``q`` lies on the closed segment ``p-r``.

    Callers must have established collinearity first (``orientation`` == 0);
    this only checks the bounding-interval condition.
    """
    return (
        min(p[0], r[0]) - EPSILON <= q[0] <= max(p[0], r[0]) + EPSILON
        and min(p[1], r[1]) - EPSILON <= q[1] <= max(p[1], r[1]) + EPSILON
    )


def point_segment_distance(p: Coord, a: Coord, b: Coord) -> float:
    """Distance from point ``p`` to the closed segment ``a-b``."""
    ax, ay = a
    bx, by = b
    px, py = p
    dx = bx - ax
    dy = by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq <= EPSILON * EPSILON:
        return math.hypot(px - ax, py - ay)
    t = ((px - ax) * dx + (py - ay) * dy) / seg_len_sq
    t = max(0.0, min(1.0, t))
    cx = ax + t * dx
    cy = ay + t * dy
    return math.hypot(px - cx, py - cy)


def collinear(p: Coord, q: Coord, r: Coord) -> bool:
    """True if the three points are collinear within tolerance."""
    return orientation(p, q, r) == 0


def polygon_signed_area(points: Sequence[Coord]) -> float:
    """Signed area of the (closed) ring described by ``points``.

    Positive for counter-clockwise rings (the shoelace formula).  The ring
    must not repeat its first vertex at the end.
    """
    n = len(points)
    if n < 3:
        return 0.0
    total = 0.0
    for i in range(n):
        x1, y1 = points[i]
        x2, y2 = points[(i + 1) % n]
        total += x1 * y2 - x2 * y1
    return total / 2.0


def is_ccw(points: Sequence[Coord]) -> bool:
    """True if the ring is counter-clockwise oriented."""
    return polygon_signed_area(points) > 0.0
