"""JoinConfig must reject bad settings at construction time.

An unknown exact method, engine, or predicate — and a worker count
below 1 or a parallel config that cannot be pickled to worker
processes — raises ``ValueError`` immediately (not deep inside the
pipeline or the process pool), and the message names the valid choices
so the fix is obvious from the traceback alone.
"""

from __future__ import annotations

import pytest

from repro.core import ENGINES, EXACT_METHODS, FilterConfig, JoinConfig


def test_unknown_exact_method_names_choices():
    with pytest.raises(ValueError) as excinfo:
        JoinConfig(exact_method="magic")
    message = str(excinfo.value)
    assert "magic" in message
    for choice in EXACT_METHODS:
        assert choice in message


def test_unknown_engine_names_choices():
    with pytest.raises(ValueError) as excinfo:
        JoinConfig(engine="warp-drive")
    message = str(excinfo.value)
    assert "warp-drive" in message
    for choice in ENGINES:
        assert choice in message
    assert "streaming" in message and "batched" in message


def test_unknown_predicate_names_choices():
    with pytest.raises(ValueError) as excinfo:
        JoinConfig(predicate="touches")
    message = str(excinfo.value)
    assert "touches" in message
    assert "intersects" in message and "within" in message


@pytest.mark.parametrize("batch_size", (0, -1, -100))
def test_invalid_batch_size_rejected(batch_size):
    with pytest.raises(ValueError, match="batch_size"):
        JoinConfig(batch_size=batch_size)


@pytest.mark.parametrize("exact_batch", (0, -1, -64))
def test_exact_batch_below_one_rejected(exact_batch):
    with pytest.raises(ValueError) as excinfo:
        JoinConfig(exact_method="vectorized", exact_batch=exact_batch)
    message = str(excinfo.value)
    assert str(exact_batch) in message
    # The message names the valid choices, like the workers validation.
    assert "per-pair" in message and "batched" in message


@pytest.mark.parametrize("exact_batch", (1.5, "64", None, True))
def test_non_integer_exact_batch_rejected(exact_batch):
    with pytest.raises(ValueError, match="exact_batch"):
        JoinConfig(exact_method="vectorized", exact_batch=exact_batch)


@pytest.mark.parametrize("exact_method", ("trstar", "planesweep", "quadratic"))
def test_exact_batch_rejected_for_per_pair_methods(exact_method):
    """Batched refinement implements only the vectorized semantics."""
    # Per-pair capacity composes with every method...
    JoinConfig(exact_method=exact_method, exact_batch=1)
    # ...but batching requires the vectorized processor.
    with pytest.raises(ValueError) as excinfo:
        JoinConfig(exact_method=exact_method, exact_batch=64)
    message = str(excinfo.value)
    assert exact_method in message and "vectorized" in message
    assert "exact_batch=64" in message


def test_exact_batch_accepted_for_vectorized():
    for exact_batch in (1, 2, 64, 4096):
        config = JoinConfig(exact_method="vectorized", exact_batch=exact_batch)
        assert config.exact_batch == exact_batch
    # The default composes with every exact method (no batching).
    for exact in EXACT_METHODS:
        assert JoinConfig(exact_method=exact).exact_batch == 1


@pytest.mark.parametrize(
    "grid", ((0, 4), (4, 0), (0, 0), (-1, 2), (2, -3))
)
def test_grid_below_one_rejected(grid):
    """Bad grids fail at the config boundary, not inside the planner."""
    with pytest.raises(ValueError) as excinfo:
        JoinConfig(grid=grid)
    message = str(excinfo.value)
    # Mirrors the workers/batch_size style: the message names the
    # offending value's field and the minimum (a 1x1 grid).
    assert "grid" in message and "1x1" in message


@pytest.mark.parametrize(
    "grid",
    ((1.5, 2), ("4", 4), (2, True), (4,), (1, 2, 3), 4, None),
)
def test_malformed_grid_rejected(grid):
    with pytest.raises(ValueError, match="grid"):
        JoinConfig(grid=grid)


def test_grid_coerced_to_tuple():
    """CLI-style list grids become tuples so the config stays hashable."""
    config = JoinConfig(grid=[3, 2])
    assert config.grid == (3, 2)
    assert isinstance(config.grid, tuple)


def test_validate_grid_helper_shared_with_executor():
    """The executor's explicit grid argument uses the same validation."""
    from repro.core import validate_grid

    assert validate_grid([2, 5]) == (2, 5)
    with pytest.raises(ValueError, match="1x1"):
        validate_grid((0, 4))


def test_unknown_scheduler_names_choices():
    from repro.core import SCHEDULERS

    with pytest.raises(ValueError) as excinfo:
        JoinConfig(scheduler="psychic")
    message = str(excinfo.value)
    assert "psychic" in message
    for choice in SCHEDULERS:
        assert choice in message


def test_valid_schedulers_accepted():
    from repro.core import SCHEDULERS

    for scheduler in SCHEDULERS:
        assert JoinConfig(scheduler=scheduler).scheduler == scheduler
    assert set(SCHEDULERS) == {"static", "stealing"}


def test_scheduler_registry_consistent_with_factory():
    """Config choices, CLI choices, and the factory agree."""
    from repro.core import SCHEDULERS, create_scheduler

    for name in SCHEDULERS:
        assert create_scheduler(name).name == name
    with pytest.raises(ValueError, match="psychic"):
        create_scheduler("psychic")


def test_unknown_partitioner_names_choices():
    from repro.core import PARTITIONERS

    with pytest.raises(ValueError) as excinfo:
        JoinConfig(partitioner="voronoi")
    message = str(excinfo.value)
    assert "voronoi" in message
    for choice in PARTITIONERS:
        assert choice in message


def test_valid_partitioners_accepted():
    from repro.core import PARTITIONERS

    for partitioner in PARTITIONERS:
        assert JoinConfig(partitioner=partitioner).partitioner == partitioner
    assert set(PARTITIONERS) == {"grid", "rtree"}


def test_partitioner_registry_consistent_with_factory():
    """Config choices, CLI choices, and the factory agree."""
    from repro.core import PARTITIONERS, create_partitioner

    for name in PARTITIONERS:
        assert create_partitioner(name).name == name
    with pytest.raises(ValueError, match="voronoi"):
        create_partitioner("voronoi")


class TestTargetTasksValidation:
    """``target_tasks`` — the tree partitioner's task budget — is
    validated at the config boundary like every other knob."""

    @pytest.mark.parametrize("bad", (0, -1, -64))
    def test_below_one_rejected(self, bad):
        with pytest.raises(ValueError, match="target_tasks"):
            JoinConfig(target_tasks=bad)

    @pytest.mark.parametrize("bad", (1.5, "8", True, None))
    def test_non_integers_rejected(self, bad):
        with pytest.raises(ValueError, match="target_tasks"):
            JoinConfig(target_tasks=bad)

    def test_valid_budgets_accepted(self):
        assert JoinConfig().target_tasks == 64
        assert JoinConfig(target_tasks=1).target_tasks == 1
        assert JoinConfig(target_tasks=500).target_tasks == 500

    def test_budget_reaches_tree_partitioner(self):
        from repro.core import create_partitioner

        assert create_partitioner("rtree", target_tasks=7).target_tasks == 7

    def test_in_canonical_key(self):
        """The budget shapes rtree task plans, hence result telemetry —
        it must split service cache entries."""
        assert (
            JoinConfig(target_tasks=8).canonical_key()
            != JoinConfig(target_tasks=64).canonical_key()
        )


class TestEpsilonValidation:
    """``validate_epsilon`` guards the distance-join boundary."""

    def test_negative_epsilon_rejected(self):
        from repro.core import validate_epsilon

        with pytest.raises(ValueError) as excinfo:
            validate_epsilon(-0.5)
        message = str(excinfo.value)
        assert "-0.5" in message and "epsilon" in message

    @pytest.mark.parametrize("epsilon", (float("nan"), float("inf"),
                                         float("-inf")))
    def test_non_finite_epsilon_rejected(self, epsilon):
        from repro.core import validate_epsilon

        with pytest.raises(ValueError, match="finite"):
            validate_epsilon(epsilon)

    def test_valid_epsilon_coerced_to_float(self):
        from repro.core import validate_epsilon

        assert validate_epsilon(0) == 0.0
        assert validate_epsilon(0.25) == 0.25
        assert isinstance(validate_epsilon(1), float)

    def test_join_rejects_negative_epsilon_at_the_boundary(self):
        from repro.core import within_distance_join

        with pytest.raises(ValueError, match="epsilon"):
            within_distance_join([], [], epsilon=-1.0)


class TestKValidation:
    """``validate_k`` guards the knn query boundary."""

    @pytest.mark.parametrize("k", (0, -1, -10))
    def test_k_below_one_rejected(self, k):
        from repro.index import validate_k

        with pytest.raises(ValueError) as excinfo:
            validate_k(k)
        message = str(excinfo.value)
        assert str(k) in message and "k must be" in message

    @pytest.mark.parametrize("k", (1.5, "4", None, True))
    def test_non_integer_k_rejected(self, k):
        from repro.index import validate_k

        with pytest.raises(ValueError, match="integer"):
            validate_k(k)

    def test_valid_k_passes_through(self):
        from repro.index import validate_k

        assert validate_k(1) == 1
        assert validate_k(50) == 50

    @pytest.mark.parametrize("k", (0, -3))
    def test_queries_reject_bad_k_at_the_boundary(self, k):
        from repro.index import RStarTree, knn_query, knn_query_exact

        tree = RStarTree()
        with pytest.raises(ValueError, match="k must be"):
            knn_query(tree, (0.5, 0.5), k)
        with pytest.raises(ValueError, match="k must be"):
            knn_query_exact(tree, (0.5, 0.5), k, [])


def test_non_session_session_rejected():
    with pytest.raises(ValueError, match="session"):
        JoinConfig(session=42)


def test_session_config_composes_with_parallel_pickle_check():
    """A live session never ships to workers: the probe strips it."""
    import pickle
    from dataclasses import replace

    from repro.core.session import JoinSession

    with JoinSession() as session:
        config = JoinConfig(workers=2, session=session)
        assert config.session is session
        # What actually crosses the process boundary is picklable.
        wire = replace(config, session=None)
        assert pickle.loads(pickle.dumps(wire)) == wire


@pytest.mark.parametrize("workers", (0, -1, -8))
def test_workers_below_one_rejected(workers):
    with pytest.raises(ValueError) as excinfo:
        JoinConfig(workers=workers)
    message = str(excinfo.value)
    assert str(workers) in message
    # The message names the valid choices, like the engine validation.
    assert "serial" in message and "multi-process" in message


@pytest.mark.parametrize("workers", (1.5, "4", None))
def test_non_integer_workers_rejected(workers):
    with pytest.raises(ValueError, match="workers"):
        JoinConfig(workers=workers)


def test_non_picklable_parallel_config_rejected_early():
    class LocalFilter(FilterConfig):
        """Instances of test-local classes cannot be pickled."""

    unpicklable = LocalFilter()
    # Serial configs never cross a process boundary: accepted.
    JoinConfig(filter=unpicklable, workers=1)
    with pytest.raises(ValueError, match="picklable"):
        JoinConfig(filter=unpicklable, workers=2)


def test_parallel_config_accepts_picklable_defaults():
    config = JoinConfig(workers=4)
    assert config.workers == 4
    import pickle

    assert pickle.loads(pickle.dumps(config)) == config


def test_valid_configs_construct():
    for engine in ENGINES:
        for exact in EXACT_METHODS:
            config = JoinConfig(engine=engine, exact_method=exact,
                                batch_size=1)
            assert config.engine == engine
            assert config.exact_method == exact


def test_registry_constants_are_consistent():
    """The CLI choices, config validation, and engine factory agree."""
    from repro.engine import BatchedEngine, StreamingEngine

    assert set(ENGINES) == {StreamingEngine.name, BatchedEngine.name}
