"""Unit tests for segment intersection primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    clip_segment_to_rect,
    line_intersection,
    segment_intersection_point,
    segment_intersects_rect,
    segment_y_at,
    segments_intersect,
)

coords = st.floats(min_value=-50, max_value=50, allow_nan=False).map(
    lambda v: round(v, 6)
)
points = st.tuples(coords, coords)


class TestSegmentsIntersect:
    def test_crossing(self):
        assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_shared_endpoint(self):
        assert segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))

    def test_t_junction(self):
        assert segments_intersect((0, 0), (2, 0), (1, -1), (1, 0))

    def test_collinear_overlap(self):
        assert segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_parallel(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    @given(points, points, points, points)
    def test_symmetry(self, a, b, c, d):
        assert segments_intersect(a, b, c, d) == segments_intersect(c, d, a, b)

    @given(points, points)
    def test_self_intersection(self, a, b):
        assert segments_intersect(a, b, a, b)


class TestIntersectionPoint:
    def test_crossing_point(self):
        p = segment_intersection_point((0, 0), (2, 2), (0, 2), (2, 0))
        assert p == pytest.approx((1.0, 1.0))

    def test_none_when_disjoint(self):
        assert segment_intersection_point((0, 0), (1, 0), (0, 1), (1, 1)) is None

    def test_collinear_overlap_returns_shared_point(self):
        p = segment_intersection_point((0, 0), (2, 0), (1, 0), (3, 0))
        assert p is not None
        assert 1.0 <= p[0] <= 2.0 and p[1] == 0.0

    @given(points, points, points, points)
    def test_consistent_with_predicate(self, a, b, c, d):
        point = segment_intersection_point(a, b, c, d)
        if point is not None:
            assert segments_intersect(a, b, c, d)


class TestLineIntersection:
    def test_perpendicular_lines(self):
        p = line_intersection((0, 0), (1, 0), (5, -1), (5, 1))
        assert p == pytest.approx((5.0, 0.0))

    def test_parallel_returns_none(self):
        assert line_intersection((0, 0), (1, 0), (0, 1), (1, 1)) is None

    def test_extends_beyond_segments(self):
        # Segments don't touch, but their lines cross at (2, 2).
        p = line_intersection((0, 0), (1, 1), (4, 0), (3, 1))
        assert p == pytest.approx((2.0, 2.0))


class TestSegmentYAt:
    def test_interpolation(self):
        assert segment_y_at((0, 0), (2, 4), 1.0) == pytest.approx(2.0)

    def test_vertical_segment(self):
        assert segment_y_at((1, 3), (1, 7), 1.0) == 3.0


class TestSegmentRect:
    def test_endpoint_inside(self):
        assert segment_intersects_rect((0.5, 0.5), (5, 5), 0, 0, 1, 1)

    def test_pass_through(self):
        assert segment_intersects_rect((-1, 0.5), (2, 0.5), 0, 0, 1, 1)

    def test_miss(self):
        assert not segment_intersects_rect((-1, 2), (2, 2), 0, 0, 1, 1)

    def test_diagonal_corner_cut(self):
        assert segment_intersects_rect((-0.5, 0.5), (0.5, -0.5), 0, 0, 1, 1)

    def test_diagonal_near_miss(self):
        assert not segment_intersects_rect((-1, 0.5), (0.5, -1), 0, 0, 1, 1)

    def test_clip_inside(self):
        seg = clip_segment_to_rect((-1, 0.5), (2, 0.5), 0, 0, 1, 1)
        assert seg is not None
        (x1, y1), (x2, y2) = seg
        assert (x1, y1) == pytest.approx((0.0, 0.5))
        assert (x2, y2) == pytest.approx((1.0, 0.5))

    def test_clip_miss_returns_none(self):
        assert clip_segment_to_rect((-1, 2), (2, 2), 0, 0, 1, 1) is None

    @given(points, points)
    def test_clip_consistent_with_predicate(self, a, b):
        hit = segment_intersects_rect(a, b, 0, 0, 1, 1)
        clipped = clip_segment_to_rect(a, b, 0, 0, 1, 1)
        if hit != (clipped is not None):
            # Grazing contact: the two functions may disagree within
            # epsilon, but only for a degenerate clip on the boundary.
            assert clipped is not None
            (x1, y1), (x2, y2) = clipped
            assert abs(x2 - x1) <= 1e-9 and abs(y2 - y1) <= 1e-9
