"""Shared helpers for the engine differential-testing harness.

Seeded-random generation of small relations with adversarial geometry
(touching edges, slivers with degenerate convex hulls, contained
objects) plus the equivalence assertion used to prove the batched engine
produces exactly the streaming engine's results and statistics.
"""

from __future__ import annotations

import math
import random
from dataclasses import replace
from typing import Dict, List, Tuple

from repro.core import JoinConfig, SpatialJoinProcessor
from repro.core.stats import MultiStepStats
from repro.datasets.relations import SpatialRelation
from repro.geometry import Polygon


def random_star(
    rng: random.Random, cx: float, cy: float, radius: float, n: int
) -> Polygon:
    """Star-shaped simple polygon around ``(cx, cy)``."""
    pts = []
    for i in range(n):
        angle = 2 * math.pi * i / n
        r = radius * (0.45 + 0.55 * rng.random())
        pts.append((cx + r * math.cos(angle), cy + r * math.sin(angle)))
    return Polygon(pts)


def grid_square(cx: float, cy: float, half: float) -> Polygon:
    return Polygon(
        [
            (cx - half, cy - half),
            (cx + half, cy - half),
            (cx + half, cy + half),
            (cx - half, cy + half),
        ]
    )


def sliver(cx: float, cy: float, length: float) -> Polygon:
    """Nearly-collinear triangle: its convex hull degenerates to 2 points."""
    return Polygon([(cx, cy), (cx + length, cy), (cx + length / 2, cy)])


def random_relation_pair(
    seed: int, n_objects: int = 12, degenerate: bool = True
) -> Tuple[SpatialRelation, SpatialRelation]:
    """Two overlapping random relations exercising the filter edge cases.

    The mix per relation: irregular stars (general position), axis-aligned
    squares snapped to a shared grid (touching MBRs and shared edges
    between the relations), slivers (degenerate hulls), and for relation A
    a few shrunken copies of B's objects (within-predicate hits).

    ``degenerate=False`` drops the zero-area slivers — needed when every
    candidate reaches the TR*-tree exact processor, whose trapezoid
    decomposition rejects fully collinear polygons (a pre-existing
    limitation of that processor, independent of the engine).
    """
    rng = random.Random(seed)
    polys_a: List[Polygon] = []
    polys_b: List[Polygon] = []
    for polys in (polys_a, polys_b):
        for _ in range(n_objects):
            cx = rng.uniform(0.0, 1.0)
            cy = rng.uniform(0.0, 1.0)
            kind = rng.random()
            if kind < 0.55 or (kind >= 0.8 and not degenerate):
                polys.append(
                    random_star(rng, cx, cy, rng.uniform(0.04, 0.16),
                                rng.randint(5, 14))
                )
            elif kind < 0.8:
                # Snap to a coarse grid so squares of both relations share
                # edges and corners exactly (touching-geometry cases).
                gx = round(cx * 8) / 8
                gy = round(cy * 8) / 8
                polys.append(grid_square(gx, gy, 0.0625))
            else:
                polys.append(sliver(cx, cy, rng.uniform(0.02, 0.1)))
    # Containment cases: small copies of B objects centred inside them.
    for i in range(0, len(polys_b), 4):
        target = polys_b[i]
        m = target.mbr()
        ccx, ccy = m.center
        polys_a[i % len(polys_a)] = grid_square(
            ccx, ccy, max(m.width, m.height) * 0.05 + 1e-4
        )
    return (
        SpatialRelation(f"A{seed}", polys_a),
        SpatialRelation(f"B{seed}", polys_b),
    )


def stats_fingerprint(stats: MultiStepStats) -> Dict[str, object]:
    """Every counter a differential test must see agree across engines."""
    return {
        "candidate_pairs": stats.candidate_pairs,
        "filter_false_hits": stats.filter_false_hits,
        "filter_hits_progressive": stats.filter_hits_progressive,
        "filter_hits_false_area": stats.filter_hits_false_area,
        "remaining_candidates": stats.remaining_candidates,
        "exact_hits": stats.exact_hits,
        "exact_false_hits": stats.exact_false_hits,
        "conservative_tests": stats.conservative_tests,
        "progressive_tests": stats.progressive_tests,
        "false_area_tests": stats.false_area_tests,
        "exact_ops": dict(stats.exact_ops.counts),
        "mbr_tests": stats.mbr_join.mbr_tests,
        "mbr_output_pairs": stats.mbr_join.output_pairs,
    }


def run_both_engines(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    config: JoinConfig,
    batch_size: int = 64,
):
    """Run the join with both engines; return (streaming, batched) results."""
    streaming = SpatialJoinProcessor(
        replace(config, engine="streaming")
    ).join(relation_a, relation_b)
    batched = SpatialJoinProcessor(
        replace(config, engine="batched", batch_size=batch_size)
    ).join(relation_a, relation_b)
    return streaming, batched


def assert_engines_equivalent(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    config: JoinConfig,
    batch_size: int = 64,
) -> None:
    """Assert identical result pairs, order, and statistics."""
    streaming, batched = run_both_engines(
        relation_a, relation_b, config, batch_size
    )
    assert streaming.id_pairs() == batched.id_pairs(), (
        f"result mismatch for {config}: "
        f"{len(streaming)} streaming vs {len(batched)} batched pairs"
    )
    fp_s = stats_fingerprint(streaming.stats)
    fp_b = stats_fingerprint(batched.stats)
    assert fp_s == fp_b, f"stats mismatch for {config}: {fp_s} != {fp_b}"
    streaming.stats.check_invariants()
    batched.stats.check_invariants()
