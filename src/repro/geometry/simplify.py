"""Polyline / polygon simplification (Douglas-Peucker).

The paper's §4 measurements hinge on object complexity: "the more
complex the object, the more significant is the quality of the object
representation", and Figure 16 shows exact-test cost growing with edge
count.  Simplification is the standard cartographic tool for controlling
that complexity; the repository uses it for

* the complexity-sweep ablation (exact-step cost vs vertex count on the
  *same* shapes at different tolerances), and
* dataset preprocessing in the examples.

Note that a simplified polygon is neither a conservative nor a
progressive approximation (vertices move to both sides of the original
boundary), so it must never be used as a *filter* in the join pipeline —
only as a data transformation.
"""

from __future__ import annotations

from typing import List, Sequence

from .polygon import Polygon
from .predicates import Coord, point_segment_distance


def simplify_polyline(
    points: Sequence[Coord], tolerance: float
) -> List[Coord]:
    """Douglas-Peucker simplification of an open polyline.

    Keeps the first and last points; a point survives when it deviates
    more than ``tolerance`` from the simplified chain.  Runs iteratively
    (explicit stack) so deep recursions on long cartographic boundaries
    cannot overflow.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    n = len(points)
    if n <= 2:
        return list(points)
    keep = [False] * n
    keep[0] = keep[-1] = True
    stack = [(0, n - 1)]
    while stack:
        first, last = stack.pop()
        if last - first < 2:
            continue
        anchor = points[first]
        floater = points[last]
        worst_dist = -1.0
        worst_idx = first
        for i in range(first + 1, last):
            d = point_segment_distance(points[i], anchor, floater)
            if d > worst_dist:
                worst_dist = d
                worst_idx = i
        if worst_dist > tolerance:
            keep[worst_idx] = True
            stack.append((first, worst_idx))
            stack.append((worst_idx, last))
    return [p for p, k in zip(points, keep) if k]


def simplify_ring(points: Sequence[Coord], tolerance: float) -> List[Coord]:
    """Simplify a closed ring; guarantees at least a triangle survives.

    The ring is cut at its two mutually farthest-in-index extreme points
    so Douglas-Peucker's fixed endpoints do not bias one vertex.
    """
    pts = list(points)
    if len(pts) <= 3:
        return pts
    # Anchor at the two vertices farthest apart along x (stable split).
    i_min = min(range(len(pts)), key=lambda i: pts[i])
    pts = pts[i_min:] + pts[:i_min]
    split = max(range(len(pts)), key=lambda i: pts[i])
    if split == 0:
        split = len(pts) // 2
    first = simplify_polyline(pts[: split + 1], tolerance)
    second = simplify_polyline(pts[split:] + pts[:1], tolerance)
    ring = first[:-1] + second[:-1]
    if len(ring) < 3:
        # Tolerance flattened the ring; keep the anchor triangle.
        third = len(pts) * 2 // 3
        ring = [pts[0], pts[split], pts[third % len(pts)]]
    return ring


def simplify_polygon(polygon: Polygon, tolerance: float) -> Polygon:
    """Simplified copy of a polygon (shell and holes independently).

    Holes whose remaining area falls below ``tolerance**2`` are dropped —
    the cartographic convention for generalisation (features smaller than
    the tolerance footprint disappear from the map).
    """
    shell = simplify_ring(list(polygon.shell), tolerance)
    min_hole_area = tolerance * tolerance
    holes = []
    for hole in polygon.holes:
        simplified = simplify_ring(list(hole), tolerance)
        if len(simplified) >= 3 and _ring_area(simplified) > min_hole_area:
            holes.append(simplified)
    return Polygon(shell, holes=holes or None)


def _ring_area(ring: Sequence[Coord]) -> float:
    area = 0.0
    n = len(ring)
    for i in range(n):
        x1, y1 = ring[i]
        x2, y2 = ring[(i + 1) % n]
        area += x1 * y2 - x2 * y1
    return abs(area) / 2.0


def vertex_reduction(points: Sequence[Coord], min_distance: float) -> List[Coord]:
    """Radial-distance pre-filter: drop points closer than ``min_distance``.

    The cheap O(n) companion of Douglas-Peucker, used to thin extremely
    dense boundaries before the O(n²) worst-case DP pass.
    """
    if min_distance < 0:
        raise ValueError("min_distance must be >= 0")
    pts = list(points)
    if len(pts) <= 2 or min_distance == 0:
        return pts
    out = [pts[0]]
    limit_sq = min_distance * min_distance
    for p in pts[1:]:
        dx = p[0] - out[-1][0]
        dy = p[1] - out[-1][1]
        if dx * dx + dy * dy >= limit_sq:
            out.append(p)
    if len(out) < 2:
        out.append(pts[-1])
    return out
