"""The multi-step spatial join processor (the paper's contribution)."""

from .costs import (
    PAGE_ACCESS_SECONDS,
    PLANESWEEP_EXACT_SECONDS,
    TRSTAR_ACCESS_FACTOR,
    TRSTAR_EXACT_SECONDS,
    ApproximationImpact,
    CostBreakdown,
    JoinScenario,
    approximation_impact,
    total_join_cost,
)
from .distance import (
    DistanceJoinConfig,
    DistanceJoinResult,
    DistanceJoinStats,
    brute_force_distance_join,
    polygon_distance,
    within_distance_join,
)
from .inside import (
    InsideJoinConfig,
    InsideJoinResult,
    brute_force_inside_join,
    points_in_regions_join,
)
from .lineregion import (
    LineJoinConfig,
    LineJoinResult,
    brute_force_line_region_join,
    line_region_join,
)
from .histogram import (
    SpatialHistogram,
    estimate_join_candidates_histogram,
    joint_histograms,
)
from .parallel import (
    MeasuredRun,
    ParallelJoinReport,
    ParallelSimulation,
    TileCost,
    measure_parallel_join,
    schedule_lpt,
    simulate_parallel_join,
    tile_costs,
)
from .parallel_exec import (
    ParallelPartitionedJoinResult,
    TileOutcome,
    TileTask,
    parallel_partitioned_join,
    plan_tile_tasks,
    run_tile_task,
)
from .selectivity import (
    FilterRates,
    JoinEstimate,
    RelationProfile,
    calibrate_rates,
    estimate_candidates,
    estimate_join,
    mbr_join_selectivity,
)
from .filters import (
    NO_FILTER,
    FilterConfig,
    FilterOutcome,
    geometric_filter,
)
from .join import (
    ENGINES,
    EXACT_METHODS,
    JoinConfig,
    JoinResult,
    SpatialJoinProcessor,
    nested_loops_join,
)
from .overlay import MapOverlay, OverlayPiece, OverlayResult
from .partition import (
    PartitionedJoinResult,
    PartitionStats,
    partitioned_join,
)
from .stats import MultiStepStats
from .window import WindowQueryProcessor, WindowQueryStats
from .within import within_exact, within_filter

__all__ = [
    "ApproximationImpact",
    "CostBreakdown",
    "DistanceJoinConfig",
    "DistanceJoinResult",
    "DistanceJoinStats",
    "brute_force_distance_join",
    "polygon_distance",
    "within_distance_join",
    "ENGINES",
    "EXACT_METHODS",
    "FilterConfig",
    "FilterRates",
    "InsideJoinConfig",
    "InsideJoinResult",
    "JoinEstimate",
    "LineJoinConfig",
    "LineJoinResult",
    "brute_force_line_region_join",
    "line_region_join",
    "brute_force_inside_join",
    "points_in_regions_join",
    "MeasuredRun",
    "ParallelJoinReport",
    "ParallelPartitionedJoinResult",
    "ParallelSimulation",
    "TileOutcome",
    "TileTask",
    "measure_parallel_join",
    "parallel_partitioned_join",
    "plan_tile_tasks",
    "run_tile_task",
    "RelationProfile",
    "SpatialHistogram",
    "TileCost",
    "calibrate_rates",
    "estimate_candidates",
    "estimate_join",
    "estimate_join_candidates_histogram",
    "joint_histograms",
    "mbr_join_selectivity",
    "schedule_lpt",
    "simulate_parallel_join",
    "tile_costs",
    "FilterOutcome",
    "JoinConfig",
    "JoinResult",
    "JoinScenario",
    "MultiStepStats",
    "MapOverlay",
    "NO_FILTER",
    "OverlayPiece",
    "OverlayResult",
    "PAGE_ACCESS_SECONDS",
    "PLANESWEEP_EXACT_SECONDS",
    "SpatialJoinProcessor",
    "TRSTAR_ACCESS_FACTOR",
    "TRSTAR_EXACT_SECONDS",
    "approximation_impact",
    "geometric_filter",
    "nested_loops_join",
    "total_join_cost",
    "WindowQueryProcessor",
    "WindowQueryStats",
    "within_exact",
    "within_filter",
    "PartitionStats",
    "PartitionedJoinResult",
    "partitioned_join",
]
