"""Buffer replacement policies and global object clustering."""

import random

import pytest

from repro.core.join import SpatialJoinProcessor
from repro.datasets.relations import europe
from repro.index.buffers import (
    BUFFER_POLICIES,
    ClockBuffer,
    FIFOBuffer,
    make_buffer,
)
from repro.index.clustering import (
    ClusteringReport,
    ObjectStore,
    compare_placements,
    object_size_bytes,
    simulate_join_object_access,
)
from repro.index.pagemodel import LRUBuffer


class TestBufferPolicies:
    @pytest.mark.parametrize("policy", sorted(BUFFER_POLICIES))
    def test_hit_after_access(self, policy):
        buf = make_buffer(policy, 4)
        assert buf.access("p1") is False
        assert buf.access("p1") is True
        assert buf.hits == 1
        assert buf.misses == 1

    @pytest.mark.parametrize("policy", sorted(BUFFER_POLICIES))
    def test_capacity_eviction(self, policy):
        buf = make_buffer(policy, 2)
        buf.access("a")
        buf.access("b")
        buf.access("c")  # evicts one page
        resident_hits = sum(buf.access(p) for p in ("a", "b", "c"))
        assert resident_hits <= 2 + 1  # at most capacity survive + re-read

    @pytest.mark.parametrize("policy", sorted(BUFFER_POLICIES))
    def test_counters_reset(self, policy):
        buf = make_buffer(policy, 4)
        buf.access("a")
        buf.access("a")
        buf.reset_counters()
        assert buf.hits == 0 and buf.misses == 0
        assert buf.access("a") is True  # contents survive a counter reset

    @pytest.mark.parametrize("policy", sorted(BUFFER_POLICIES))
    def test_clear_drops_contents(self, policy):
        buf = make_buffer(policy, 4)
        buf.access("a")
        buf.clear()
        assert buf.access("a") is False

    def test_fifo_ignores_recency(self):
        buf = FIFOBuffer(2)
        buf.access("a")
        buf.access("b")
        buf.access("a")  # hit, but FIFO order unchanged
        buf.access("c")  # evicts "a" (first in), not "b"
        assert buf.access("b") is True
        assert buf.access("a") is False

    def test_lru_respects_recency(self):
        buf = LRUBuffer(2)
        buf.access("a")
        buf.access("b")
        buf.access("a")  # refreshes "a"
        buf.access("c")  # evicts "b"
        assert buf.access("a") is True
        assert buf.access("b") is False

    def test_clock_second_chance(self):
        buf = ClockBuffer(2)
        buf.access("a")
        buf.access("b")
        buf.access("a")  # sets a's reference bit
        buf.access("c")  # b has no second chance -> evicted
        assert buf.access("a") is True
        assert buf.access("b") is False

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_buffer("arc", 8)

    @pytest.mark.parametrize("policy", sorted(BUFFER_POLICIES))
    def test_sequential_scan_all_miss(self, policy):
        buf = make_buffer(policy, 8)
        for i in range(100):
            assert buf.access(i) is False
        assert buf.misses == 100

    @pytest.mark.parametrize("policy", sorted(BUFFER_POLICIES))
    def test_working_set_within_capacity_all_hits(self, policy):
        buf = make_buffer(policy, 10)
        pages = list(range(10))
        for p in pages:
            buf.access(p)
        buf.reset_counters()
        rng = random.Random(1)
        for _ in range(200):
            assert buf.access(rng.choice(pages)) is True


class TestObjectStore:
    def test_object_size(self):
        assert object_size_bytes(0) == 32
        assert object_size_bytes(100) == 32 + 1600

    def test_invalid_order_rejected(self):
        rel = europe(size=5)
        with pytest.raises(ValueError):
            ObjectStore(rel, order="sorted-by-name")

    def test_small_page_rejected(self):
        rel = europe(size=5)
        with pytest.raises(ValueError):
            ObjectStore(rel, page_size=16)

    @pytest.mark.parametrize("order", ["insertion", "hilbert", "zorder", "random"])
    def test_every_object_placed(self, order):
        rel = europe(size=40)
        store = ObjectStore(rel, order=order)
        assert len(store) == 40
        for obj in rel:
            assert store.pages_of(obj.oid)

    def test_pages_contiguous(self):
        rel = europe(size=40)
        store = ObjectStore(rel, order="hilbert")
        for obj in rel:
            pages = store.pages_of(obj.oid)
            assert list(pages) == list(range(pages[0], pages[-1] + 1))

    def test_total_pages_covers_bytes(self):
        rel = europe(size=30)
        store = ObjectStore(rel, page_size=2048)
        assert store.total_pages() >= store.total_bytes() // 2048

    def test_unbuffered_read_counts_all_pages(self):
        rel = europe(size=10)
        store = ObjectStore(rel)
        obj = rel[0]
        assert store.read_object(obj.oid) == len(store.pages_of(obj.oid))

    def test_buffered_reread_is_free(self):
        rel = europe(size=10)
        store = ObjectStore(rel)
        buf = LRUBuffer(64)
        store.read_object(rel[0].oid, buf)
        assert store.read_object(rel[0].oid, buf) == 0


class TestClusteringImpact:
    def join_pairs(self, rel_a, rel_b):
        result = SpatialJoinProcessor().join(rel_a, rel_b)
        return result.id_pairs()

    def test_reports_have_consistent_totals(self):
        rel_a = europe(size=40)
        rel_b = europe(seed=5, size=40)
        pairs = self.join_pairs(rel_a, rel_b)
        store_a = ObjectStore(rel_a, order="hilbert")
        store_b = ObjectStore(rel_b, order="hilbert")
        report = simulate_join_object_access(pairs, store_a, store_b)
        assert report.objects_fetched == 2 * len(pairs)
        assert report.page_reads + report.buffer_hits > 0
        assert 0.0 <= report.hit_ratio <= 1.0

    def test_clustering_beats_random_placement(self):
        """Global clustering must reduce join object-access I/O ([BK 94])."""
        rel_a = europe(size=80)
        rel_b = europe(seed=9, size=80)
        pairs = self.join_pairs(rel_a, rel_b)
        reports = {
            r.order: r
            for r in compare_placements(
                rel_a, rel_b, pairs, page_size=2048, buffer_pages=16
            )
        }
        assert reports["hilbert"].page_reads <= reports["random"].page_reads
        assert isinstance(reports["hilbert"], ClusteringReport)

    def test_empty_pair_sequence(self):
        rel = europe(size=10)
        store = ObjectStore(rel)
        report = simulate_join_object_access([], store, store)
        assert report.page_reads == 0
        assert report.objects_fetched == 0
