"""Tests for the R*-tree: structure, queries, bulk load, I/O counting."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import uniform_rect_items
from repro.geometry import Rect
from repro.index import AccessCounter, LRUBuffer, RStarTree


def build_tree(items, max_entries=8):
    tree = RStarTree(max_entries=max_entries)
    for rect, item in items:
        tree.insert(rect, item)
    return tree


class TestStructure:
    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            RStarTree(max_entries=1)

    def test_empty_tree_queries(self):
        tree = RStarTree()
        assert tree.window_query(Rect(0, 0, 1, 1)) == []
        assert tree.size == 0

    def test_single_insert(self):
        tree = RStarTree()
        tree.insert(Rect(0, 0, 1, 1), "a")
        assert tree.size == 1
        assert tree.window_query(Rect(0.5, 0.5, 2, 2)) == ["a"]

    @pytest.mark.parametrize("max_entries", [4, 8, 16, 32])
    def test_invariants_after_many_inserts(self, max_entries):
        items = uniform_rect_items(300, seed=max_entries)
        tree = build_tree(items, max_entries=max_entries)
        tree.check_invariants()
        assert tree.size == 300

    def test_height_grows_logarithmically(self):
        items = uniform_rect_items(500, seed=3)
        tree = build_tree(items, max_entries=8)
        # 500 entries at fanout >= 4 (min fill of 8): height <= ~5.
        assert 2 <= tree.height <= 6

    def test_all_entries_roundtrip(self):
        items = uniform_rect_items(120, seed=9)
        tree = build_tree(items)
        got = sorted(e.item for e in tree.all_entries())
        assert got == sorted(i for _r, i in items)


class TestQueries:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_window_query_matches_scan(self, seed):
        rng = random.Random(seed)
        items = uniform_rect_items(200, seed=seed, avg_extent=0.05)
        tree = build_tree(items)
        w = Rect(rng.random() * 0.5, rng.random() * 0.5, 0.7, 0.7)
        got = sorted(tree.window_query(w))
        want = sorted(i for r, i in items if r.intersects(w))
        assert got == want

    def test_point_query_matches_scan(self):
        items = uniform_rect_items(200, seed=5, avg_extent=0.1)
        tree = build_tree(items)
        p = (0.4, 0.6)
        got = sorted(tree.point_query(p))
        want = sorted(i for r, i in items if r.contains_point(p))
        assert got == want

    def test_query_visits_fewer_nodes_than_scan(self):
        items = uniform_rect_items(1000, seed=1)
        tree = build_tree(items, max_entries=16)
        counter = AccessCounter()
        tree.window_query(Rect(0.4, 0.4, 0.45, 0.45), counter)
        assert counter.node_visits < tree.node_count() / 2


class TestBulkLoad:
    def test_matches_dynamic_queries(self):
        items = uniform_rect_items(400, seed=7)
        dyn = build_tree(items)
        blk = RStarTree.bulk_load(items, max_entries=8)
        w = Rect(0.1, 0.1, 0.6, 0.4)
        assert sorted(dyn.window_query(w)) == sorted(blk.window_query(w))

    def test_bulk_tree_is_packed(self):
        items = uniform_rect_items(1000, seed=2)
        blk = RStarTree.bulk_load(items, max_entries=10, fill_factor=0.7)
        # STR packing should achieve close to the requested fill factor.
        utilisation = blk.size / (blk.leaf_count() * 10)
        assert utilisation >= 0.6

    def test_bulk_invariants(self):
        items = uniform_rect_items(333, seed=4)
        blk = RStarTree.bulk_load(items, max_entries=9)
        blk.check_invariants()  # non-strict min fill for bulk loads

    def test_empty_bulk_load(self):
        tree = RStarTree.bulk_load([])
        assert tree.size == 0


class TestDirectoryCapacity:
    def test_separate_directory_capacity(self):
        items = uniform_rect_items(300, seed=11)
        tree = RStarTree(max_entries=4, directory_max=20)
        for r, i in items:
            tree.insert(r, i)
        tree.check_invariants()
        # Directory nodes may hold up to 20 children.
        assert tree.height <= 4


class TestIOAccounting:
    def test_lru_buffer_hits(self):
        buf = LRUBuffer(capacity_pages=2)
        assert not buf.access("a")   # miss
        assert buf.access("a")       # hit
        assert not buf.access("b")   # miss
        assert not buf.access("c")   # miss, evicts "a"
        assert not buf.access("a")   # miss again
        assert buf.misses == 4 and buf.hits == 1

    def test_buffer_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUBuffer(0)

    def test_repeated_query_hits_buffer(self):
        items = uniform_rect_items(300, seed=8)
        tree = build_tree(items, max_entries=8)
        buf = LRUBuffer(capacity_pages=1000)
        counter = AccessCounter(buffer=buf)
        w = Rect(0.2, 0.2, 0.4, 0.4)
        tree.window_query(w, counter)
        first_reads = counter.page_reads
        tree.window_query(w, counter)
        assert counter.page_reads == first_reads  # all pages buffered

    def test_unbuffered_counter_counts_every_visit(self):
        items = uniform_rect_items(100, seed=10)
        tree = build_tree(items)
        counter = AccessCounter()
        tree.window_query(Rect(0, 0, 1, 1), counter)
        assert counter.page_reads == counter.node_visits == tree.node_count()


class TestPageLayout:
    def test_capacities(self):
        from repro.index import PageLayout

        # Paper §5: MBR 16B + 5-C 40B + info 32B = 88B -> 46 entries in 4K.
        layout = PageLayout(page_size=4096, key_bytes=16, extra_leaf_bytes=40)
        assert layout.leaf_capacity() == 4096 // 88
        assert layout.directory_capacity() == 4096 // 20

    def test_buffer_pages(self):
        from repro.index import PageLayout

        layout = PageLayout(page_size=2048)
        assert layout.buffer_pages(128 * 1024) == 64


class TestDeletion:
    def test_delete_and_query(self):
        items = uniform_rect_items(120, seed=21, avg_extent=0.05)
        tree = build_tree(items, max_entries=8)
        rect, item = items[17]
        assert tree.delete(rect, item)
        assert tree.size == 119
        assert item not in tree.window_query(rect)

    def test_delete_absent_returns_false(self):
        items = uniform_rect_items(20, seed=22)
        tree = build_tree(items)
        assert not tree.delete(Rect(0.9, 0.9, 0.99, 0.99), "missing")
        assert tree.size == 20

    def test_delete_many_preserves_invariants_and_results(self):
        import random as _random

        rng = _random.Random(23)
        items = uniform_rect_items(250, seed=23, avg_extent=0.04)
        tree = build_tree(items, max_entries=6)
        remaining = list(items)
        rng.shuffle(remaining)
        removed, kept = remaining[:150], remaining[150:]
        for rect, item in removed:
            assert tree.delete(rect, item)
        tree.check_invariants()
        w = Rect(0, 0, 1, 1)
        assert sorted(tree.window_query(w)) == sorted(i for _r, i in kept)

    def test_delete_all_entries(self):
        items = uniform_rect_items(40, seed=24)
        tree = build_tree(items, max_entries=4)
        for rect, item in items:
            assert tree.delete(rect, item)
        assert tree.size == 0
        assert tree.window_query(Rect(0, 0, 1, 1)) == []

    def test_reinsert_after_heavy_deletion(self):
        items = uniform_rect_items(100, seed=25, avg_extent=0.03)
        tree = build_tree(items, max_entries=5)
        for rect, item in items[:80]:
            tree.delete(rect, item)
        for rect, item in items[:80]:
            tree.insert(rect, item)
        tree.check_invariants()
        w = Rect(0.2, 0.2, 0.7, 0.7)
        want = sorted(i for r, i in items if r.intersects(w))
        assert sorted(tree.window_query(w)) == want
