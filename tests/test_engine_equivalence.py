"""Differential-testing harness: BatchedEngine ≡ StreamingEngine.

The batched engine must produce *identical* result pairs (same pairs,
same order) and identical ``MultiStepStats`` filter classifications
(hit / false hit / remaining candidate, plus every test counter) for
every predicate, filter configuration, and exact method.  The harness
generates seeded-random relation pairs — ``test_differential_fuzz``
alone covers > 200 of them — and asserts equivalence on each.
"""

from __future__ import annotations

import pytest

from helpers import (
    assert_engines_equivalent,
    random_relation_pair,
    run_both_engines,
)
from repro.core import FilterConfig, JoinConfig
from repro.engine import BatchedEngine, StreamingEngine, create_engine

# Filter/exact/predicate coverage: every approximation family (rect,
# general convex, circle, ellipse), both test orders, the false-area
# test, no-filter, both predicates, and every exact method.
CONFIGS = [
    JoinConfig(exact_method="vectorized"),  # paper default: 5-C + MER
    JoinConfig(
        filter=FilterConfig(conservative="MBR", progressive=None),
        exact_method="vectorized",
    ),
    JoinConfig(
        filter=FilterConfig(conservative="RMBR", progressive="MER",
                            use_false_area_test=True),
        exact_method="vectorized",
    ),
    JoinConfig(
        filter=FilterConfig(conservative="MBC", progressive="MEC"),
        exact_method="vectorized",
    ),
    JoinConfig(
        filter=FilterConfig(conservative="MBE", progressive="MER",
                            progressive_first=True),
        exact_method="vectorized",
    ),
    JoinConfig(
        filter=FilterConfig(conservative="CH", progressive="MER",
                            use_false_area_test=True),
        exact_method="quadratic",
    ),
    JoinConfig(
        filter=FilterConfig(conservative=None, progressive="MER"),
        exact_method="planesweep",
    ),
    JoinConfig(
        filter=FilterConfig(conservative=None, progressive=None),
        exact_method="trstar",
    ),
    JoinConfig(exact_method="vectorized", predicate="within"),
    JoinConfig(
        filter=FilterConfig(conservative="4-C", progressive="MEC"),
        predicate="within",
        buffer_pages=8,
    ),
]

_IDS = [
    f"{c.predicate}-{c.exact_method}-{c.filter.describe().replace(', ', '+')}"
    for c in CONFIGS
]


@pytest.mark.parametrize("config", CONFIGS[:4], ids=_IDS[:4])
def test_engines_equivalent_smoke(config):
    """Quick subset of the harness (kept out of the slow marker)."""
    for seed in (1, 2):
        rel_a, rel_b = random_relation_pair(seed)
        assert_engines_equivalent(rel_a, rel_b, config)


@pytest.mark.slow
@pytest.mark.parametrize("config", CONFIGS, ids=_IDS)
def test_differential_fuzz(config):
    """≥ 200 generated relation pairs across all configs (10 × 21)."""
    for seed in range(100, 121):
        rel_a, rel_b = random_relation_pair(
            seed, degenerate=config.exact_method != "trstar"
        )
        assert_engines_equivalent(rel_a, rel_b, config)


@pytest.mark.slow
def test_batch_size_sweep():
    """Equivalence is independent of the block size, including size 1."""
    rel_a, rel_b = random_relation_pair(42, n_objects=20)
    config = JoinConfig(exact_method="vectorized")
    for batch_size in (1, 2, 7, 64, 4096):
        assert_engines_equivalent(rel_a, rel_b, config, batch_size=batch_size)


def test_equivalence_on_paper_series(tiny_series, tiny_oracle):
    """Both engines agree with each other and the nested-loops oracle."""
    config = JoinConfig(exact_method="vectorized")
    streaming, batched = run_both_engines(
        tiny_series.relation_a, tiny_series.relation_b, config
    )
    assert streaming.id_pairs() == batched.id_pairs()
    assert set(batched.id_pairs()) == tiny_oracle


def test_create_engine_dispatch():
    assert isinstance(create_engine(JoinConfig()), StreamingEngine)
    assert isinstance(
        create_engine(JoinConfig(engine="batched")), BatchedEngine
    )
    assert create_engine(JoinConfig()).name == "streaming"
    assert create_engine(JoinConfig(engine="batched")).name == "batched"


def test_cli_engine_flag(tmp_path, capsys):
    """`--engine batched` produces the same CLI report as streaming."""
    from repro.cli import main
    from repro.datasets.io import save_relation

    rel_a, rel_b = random_relation_pair(7)
    path_a = str(tmp_path / "a.wkt")
    path_b = str(tmp_path / "b.wkt")
    save_relation(rel_a, path_a)
    save_relation(rel_b, path_b)

    assert main(["join", path_a, path_b, "--exact", "vectorized"]) == 0
    out_streaming = capsys.readouterr().out
    assert main([
        "join", path_a, path_b, "--exact", "vectorized",
        "--engine", "batched", "--batch-size", "32",
    ]) == 0
    out_batched = capsys.readouterr().out
    assert out_batched == out_streaming


def test_parallel_simulator_accepts_engine():
    """The tile simulator runs its local joins on the chosen engine."""
    from repro.core import simulate_parallel_join

    rel_a, rel_b = random_relation_pair(3)
    config = JoinConfig(exact_method="vectorized")
    report_s = simulate_parallel_join(
        rel_a, rel_b, grid=(2, 2), config=config, engine="streaming"
    )
    report_b = simulate_parallel_join(
        rel_a, rel_b, grid=(2, 2), config=config, engine="batched"
    )
    assert report_s.result.id_pairs() == report_b.result.id_pairs()
    assert report_s.speedup_curve() == report_b.speedup_curve()
