"""Ellipses and the minimum-volume enclosing ellipse.

The MBE conservative approximation (§3.2) stores 5 parameters.  The paper
uses the randomised algorithm of [Wel 91]; we use the Khachiyan iteration
(equivalent result, deterministic) applied to the convex-hull vertices.

An ellipse is represented as ``(x - c)^T A (x - c) <= 1`` with ``A``
symmetric positive definite.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .convex import convex_hull
from .predicates import Coord
from .rectangle import Rect


class Ellipse:
    """Closed ellipse ``(x - c)^T A (x - c) <= 1``."""

    __slots__ = ("center", "matrix", "_axes")

    def __init__(self, center: Coord, matrix: np.ndarray):
        self.center = (float(center[0]), float(center[1]))
        mat = np.asarray(matrix, dtype=float)
        if mat.shape != (2, 2):
            raise ValueError("ellipse matrix must be 2x2")
        self.matrix = (mat + mat.T) / 2.0
        self._axes: Optional[Tuple[float, float, np.ndarray]] = None

    # -- derived quantities ---------------------------------------------------

    def _eig(self) -> Tuple[float, float, np.ndarray]:
        """Semi-axes ``(a, b)`` and rotation matrix ``R`` (columns = axes)."""
        if self._axes is None:
            vals, vecs = np.linalg.eigh(self.matrix)
            vals = np.maximum(vals, 1e-30)
            a = 1.0 / math.sqrt(vals[0])
            b = 1.0 / math.sqrt(vals[1])
            self._axes = (a, b, vecs)
        return self._axes

    @property
    def semi_axes(self) -> Tuple[float, float]:
        a, b, _ = self._eig()
        return (max(a, b), min(a, b))

    def area(self) -> float:
        det = float(np.linalg.det(self.matrix))
        if det <= 0:
            return math.inf
        return math.pi / math.sqrt(det)

    def mbr(self) -> Rect:
        inv = np.linalg.inv(self.matrix)
        hw = math.sqrt(max(inv[0, 0], 0.0))
        hh = math.sqrt(max(inv[1, 1], 0.0))
        cx, cy = self.center
        return Rect(cx - hw, cy - hh, cx + hw, cy + hh)

    # -- predicates -------------------------------------------------------------

    def contains_point(self, p: Coord, tol: float = 1e-9) -> bool:
        d = np.array([p[0] - self.center[0], p[1] - self.center[1]])
        return float(d @ self.matrix @ d) <= 1.0 + tol

    def boundary_points(self, n: int = 64) -> List[Coord]:
        a, b, vecs = self._eig()
        cx, cy = self.center
        out: List[Coord] = []
        for i in range(n):
            t = 2 * math.pi * i / n
            local = vecs @ np.array([a * math.cos(t), b * math.sin(t)])
            out.append((cx + float(local[0]), cy + float(local[1])))
        return out

    def intersects_ellipse(self, other: "Ellipse", tol: float = 1e-9) -> bool:
        """True if the closed ellipses share a point.

        Strategy: map ``self`` to the unit disk by an affine transform and
        test whether the transformed ``other`` comes within distance 1 of
        the origin (coarse angular sampling refined by golden-section
        search; accurate far beyond filter needs).
        """
        if self.contains_point(other.center, tol) or other.contains_point(
            self.center, tol
        ):
            return True
        # Affine map: y = L^T (x - c_self) turns self into the unit disk,
        # where A_self = L L^T (Cholesky).
        try:
            chol = np.linalg.cholesky(self.matrix)
        except np.linalg.LinAlgError:
            return self.mbr().intersects(other.mbr())
        lt = chol.T
        lt_inv = np.linalg.inv(lt)
        center_b = lt @ np.array(
            [other.center[0] - self.center[0], other.center[1] - self.center[1]]
        )
        mat_b = lt_inv.T @ other.matrix @ lt_inv
        mapped = Ellipse((float(center_b[0]), float(center_b[1])), mat_b)
        return _min_dist_to_origin(mapped) <= 1.0 + tol

    def __repr__(self) -> str:
        a, b = self.semi_axes
        return (
            f"Ellipse(({self.center[0]:.6g}, {self.center[1]:.6g}), "
            f"a={a:.6g}, b={b:.6g})"
        )


def _min_dist_to_origin(ell: Ellipse, samples: int = 96) -> float:
    """Minimum distance from the origin to the boundary of ``ell``."""
    a, b, vecs = ell._eig()
    cx, cy = ell.center

    def dist(t: float) -> float:
        local = vecs @ np.array([a * math.cos(t), b * math.sin(t)])
        return math.hypot(cx + float(local[0]), cy + float(local[1]))

    best_t = 0.0
    best_d = math.inf
    for i in range(samples):
        t = 2 * math.pi * i / samples
        d = dist(t)
        if d < best_d:
            best_d = d
            best_t = t
    # Golden-section refinement around the best sample.
    span = 2 * math.pi / samples
    lo, hi = best_t - span, best_t + span
    phi = (math.sqrt(5) - 1) / 2
    c = hi - phi * (hi - lo)
    d_ = lo + phi * (hi - lo)
    for _ in range(60):
        if dist(c) < dist(d_):
            hi = d_
        else:
            lo = c
        c = hi - phi * (hi - lo)
        d_ = lo + phi * (hi - lo)
    return min(best_d, dist((lo + hi) / 2))


def minimum_enclosing_ellipse(
    points: Sequence[Coord], tolerance: float = 1e-5, max_iter: int = 2000
) -> Ellipse:
    """Minimum-volume enclosing ellipse (Khachiyan's algorithm).

    Operates on the convex hull for speed; the returned ellipse is
    inflated by the iteration tolerance so that containment of every
    input point is guaranteed (a requirement for a *conservative*
    approximation).
    """
    all_pts = [(float(x), float(y)) for x, y in points]
    hull = convex_hull(all_pts)
    if len(hull) == 0:
        raise ValueError("minimum_enclosing_ellipse: empty point set")
    if len(hull) == 1:
        return Ellipse(hull[0], np.eye(2) * 1e20)
    if len(hull) == 2:
        return _inflate_to_cover(
            _ellipse_from_segment(hull[0], hull[1]), np.array(all_pts)
        )

    pts = np.array(hull, dtype=float)
    n = len(pts)
    q = np.vstack([pts.T, np.ones(n)])  # 3 x n
    u = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        x = q @ np.diag(u) @ q.T
        try:
            inv_x = np.linalg.inv(x)
        except np.linalg.LinAlgError:
            x += np.eye(3) * 1e-12
            inv_x = np.linalg.inv(x)
        m = np.einsum("ij,ji->i", q.T @ inv_x, q)
        j = int(np.argmax(m))
        max_m = m[j]
        step = (max_m - 3.0) / (3.0 * (max_m - 1.0))
        new_u = (1 - step) * u
        new_u[j] += step
        if np.linalg.norm(new_u - u) < tolerance:
            u = new_u
            break
        u = new_u

    center_vec = pts.T @ u
    cov = pts.T @ np.diag(u) @ pts - np.outer(center_vec, center_vec)
    try:
        mat = np.linalg.inv(cov) / 2.0
    except np.linalg.LinAlgError:
        return _ellipse_from_segment(
            tuple(pts[0]), tuple(pts[-1])
        )
    ell = Ellipse((float(center_vec[0]), float(center_vec[1])), mat)
    # Inflate until every original input point is covered — not just the
    # hull vertices: the hull construction may drop near-collinear points
    # that a conservative approximation must still contain.
    return _inflate_to_cover(ell, np.array(all_pts))


def _inflate_to_cover(ell: Ellipse, pts: np.ndarray) -> Ellipse:
    """Scale the ellipse outward until it contains every point.

    Containment is judged with the same scalar expression
    :meth:`Ellipse.contains_point` evaluates: on a sliver ellipse the
    matrix entries reach ``1/b^2`` and the quadratic form cancels down
    from terms that large, so an analytically exact rescale can still
    leave a point evaluating outside by far more than the containment
    tolerance.  Rescaling until the *evaluated* maximum drops to 1
    makes the conservative guarantee hold in the arithmetic the
    predicate actually performs (a couple of iterations at most).
    """
    center = np.array(ell.center)
    diffs = pts - center
    matrix = ell.matrix
    for _ in range(64):
        values = [float(d @ matrix @ d) for d in diffs]
        scale = max((v for v in values if not math.isnan(v)), default=1.0)
        if not math.isfinite(scale):
            # Pathological aspect ratio: fall back to an enclosing circle.
            radius = float(np.sqrt((diffs * diffs).sum(axis=1)).max()) or 1e-12
            return Ellipse(
                ell.center, np.eye(2) / (radius * radius * (1 + 1e-9))
            )
        if scale <= 1.0:
            break
        matrix = matrix / (scale * (1 + 1e-12))
    if matrix is ell.matrix:
        return ell
    return Ellipse(ell.center, matrix)


def _ellipse_from_segment(a: Coord, b: Coord) -> Ellipse:
    """Thin ellipse covering a segment (degenerate hull case)."""
    cx = (a[0] + b[0]) / 2.0
    cy = (a[1] + b[1]) / 2.0
    half = math.hypot(b[0] - a[0], b[1] - a[1]) / 2.0
    half = max(half, 1e-12)
    minor = half * 1e-3
    angle = math.atan2(b[1] - a[1], b[0] - a[0])
    rot = np.array(
        [[math.cos(angle), -math.sin(angle)], [math.sin(angle), math.cos(angle)]]
    )
    diag = np.diag([1.0 / (half * half * (1 + 1e-9)), 1.0 / (minor * minor)])
    return Ellipse((cx, cy), rot @ diag @ rot.T)
