"""End-to-end workflows across modules (the downstream-user scenarios)."""

import pytest

from repro.core import (
    FilterConfig,
    JoinConfig,
    MapOverlay,
    SpatialJoinProcessor,
    estimate_join,
    estimate_join_candidates_histogram,
    joint_histograms,
    nested_loops_join,
    partitioned_join,
    simulate_parallel_join,
)
from repro.core.selectivity import calibrate_rates
from repro.datasets import europe, strategy_a
from repro.datasets.io import load_relation, save_relation
from repro.index import RPlusTree, hilbert_pack_rtree, rplus_mbr_join, rstar_join
from repro.index.clustering import ObjectStore, simulate_join_object_access


@pytest.fixture(scope="module")
def series():
    return strategy_a(europe(size=70))


@pytest.fixture(scope="module")
def join_result(series):
    return SpatialJoinProcessor().join(series.relation_a, series.relation_b)


class TestRoundTrip:
    def test_wkt_roundtrip_preserves_join(self, tmp_path, series):
        """Save both relations as WKT, reload, join — identical result."""
        path_a = tmp_path / "a.wkt"
        path_b = tmp_path / "b.wkt"
        save_relation(series.relation_a, str(path_a))
        save_relation(series.relation_b, str(path_b))
        reloaded_a = load_relation(str(path_a))
        reloaded_b = load_relation(str(path_b))
        original = sorted(
            SpatialJoinProcessor()
            .join(series.relation_a, series.relation_b)
            .id_pairs()
        )
        reloaded = sorted(
            SpatialJoinProcessor().join(reloaded_a, reloaded_b).id_pairs()
        )
        assert original == reloaded


class TestEveryConfigurationAgrees:
    """The paper's core invariant: filters and backends change cost only."""

    def test_all_filter_configs_same_result(self, series):
        expected = sorted(nested_loops_join(series.relation_a, series.relation_b))
        configs = [
            FilterConfig(conservative=None, progressive=None),
            FilterConfig(conservative="RMBR", progressive=None),
            FilterConfig(conservative="5-C", progressive="MER"),
            FilterConfig(conservative="CH", progressive="MEC"),
        ]
        for fc in configs:
            result = SpatialJoinProcessor(JoinConfig(filter=fc)).join(
                series.relation_a, series.relation_b
            )
            assert sorted(result.id_pairs()) == expected, fc

    def test_partitioned_equals_plain_under_any_grid(self, series, join_result):
        expected = sorted(join_result.id_pairs())
        for grid in ((1, 1), (2, 3), (5, 5)):
            part = partitioned_join(
                series.relation_a, series.relation_b, grid=grid
            )
            assert sorted(part.id_pairs()) == expected, grid

    def test_mbr_join_backends_agree(self, series):
        items_a = series.relation_a.mbr_items()
        items_b = series.relation_b.mbr_items()
        rstar_a = series.relation_a.build_rtree(max_entries=8)
        rstar_b = series.relation_b.build_rtree(max_entries=8)
        reference = sorted(
            (a.oid, b.oid) for a, b in rstar_join(rstar_a, rstar_b)
        )
        packed = sorted(
            (a.oid, b.oid)
            for a, b in rstar_join(
                hilbert_pack_rtree(items_a, max_entries=8),
                hilbert_pack_rtree(items_b, max_entries=8),
            )
        )
        rplus = sorted(
            (a.oid, b.oid)
            for a, b in rplus_mbr_join(
                RPlusTree.bulk_load(items_a, max_entries=8),
                RPlusTree.bulk_load(items_b, max_entries=8),
            )
        )
        assert packed == reference
        assert rplus == reference


class TestOptimiserLoop:
    """Estimate -> execute -> calibrate -> re-estimate."""

    def test_histogram_estimate_within_range(self, series, join_result):
        hist_a, hist_b = joint_histograms(
            series.relation_a, series.relation_b
        )
        estimated = estimate_join_candidates_histogram(hist_a, hist_b)
        measured = join_result.stats.candidate_pairs
        assert measured / 5 <= estimated <= measured * 5

    def test_calibration_feedback(self, series, join_result):
        stats = join_result.stats
        rates = calibrate_rates(
            stats.filter_hits + stats.exact_hits,
            stats.filter_false_hits + stats.exact_false_hits,
            stats.filter_hits,
            stats.filter_false_hits,
        )
        estimate = estimate_join(series.relation_a, series.relation_b, rates)
        # calibrated filter effectiveness equals the measured one
        assert estimate.filter_effectiveness == pytest.approx(
            stats.identification_rate(), abs=1e-9
        )


class TestCapacityPlanning:
    """Join -> clustering report -> parallel speedup, one pipeline."""

    def test_full_planning_workflow(self, series, join_result):
        pairs = join_result.id_pairs()
        store_a = ObjectStore(series.relation_a, order="hilbert")
        store_b = ObjectStore(series.relation_b, order="hilbert")
        io_report = simulate_join_object_access(pairs, store_a, store_b)
        assert io_report.objects_fetched == 2 * len(pairs)

        parallel = simulate_parallel_join(
            series.relation_a,
            series.relation_b,
            grid=(4, 4),
            processor_counts=(1, 4),
        )
        assert sorted(parallel.result.id_pairs()) == sorted(pairs)
        one, four = (sim for _, sim in parallel.simulations)
        assert four.speedup >= one.speedup


class TestOverlayConsistency:
    def test_overlay_area_independent_of_filter_config(self, series):
        plain = MapOverlay(
            JoinConfig(filter=FilterConfig(conservative=None, progressive=None))
        ).intersection(series.relation_a, series.relation_b)
        filtered = MapOverlay(
            JoinConfig(filter=FilterConfig(conservative="5-C", progressive="MER"))
        ).intersection(series.relation_a, series.relation_b)
        assert plain.total_area() == pytest.approx(
            filtered.total_area(), rel=1e-9
        )
