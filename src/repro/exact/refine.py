"""Batched, columnar-native refinement of remaining candidates.

The filter step has been set-at-a-time since the batched engine landed;
this module makes the *exact* step (step 3, paper §4) set-at-a-time too.
Candidates that survive the geometric filter are accumulated by the
:class:`~repro.engine.base.RefinementPipeline` into batches of
``JoinConfig.exact_batch`` and resolved here against the **flattened
ring geometry already present in the columnar relation store**
(:class:`~repro.datasets.columnar.RingColumns`) — no per-call
``EdgeArrays`` rebuild, no per-pair Python edge loops:

* per-object edge arrays are gathered from the ring columns once and
  cached for the whole join (:class:`RingGeometry`);
* each pair's edge sets are pruned against the (margin-inflated)
  intersection of the two object MBRs before the ``n1 x n2``
  segment-intersection matrix runs
  (:func:`~repro.geometry.fastops.edges_overlapping_rect_mask` +
  :func:`~repro.geometry.fastops.edge_matrix_intersect_any`);
* the containment fallback for edge-disjoint pairs runs as one bulk
  numpy point-in-polygon call over the whole batch
  (:func:`~repro.geometry.fastops.points_in_polygons_bulk`).

Decisions are identical to the per-pair ``vectorized`` processor
(:func:`~repro.geometry.fastops.polygons_intersect_fast`): the matrix
kernel is the same function evaluated on a pruned subset, pruning is
sound by construction (an edge whose bounding box misses the inflated
clip rectangle cannot satisfy the eps-tolerant edge-pair predicate),
and the point-in-polygon kernel replicates ``Polygon.contains_point``
operation for operation.  ``tests/test_refine_equivalence.py`` is the
differential harness.

The ``within`` predicate and objects without a ring-column row fall
back to the scalar per-pair code inside the batch (counted by
``MultiStepStats.refine_fallback_pairs``), so the pipeline composes
with every predicate.

In the multi-process tile executor the worker builds a
:class:`RingGeometry` directly over the shared-memory mapped ring
columns (:func:`repro.core.parallel_exec._run_columnar_tile_refined`),
so the exact step reads vertex coordinates straight out of the shipped
segments instead of re-deriving edges from rebuilt polygons.  All
cached per-object arrays are copies, never views, so the segment can be
unmapped as soon as the tile's join finishes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.join import JoinConfig
from ..core.stats import MultiStepStats
from ..datasets.columnar import ColumnarRelation, RingColumns
from ..engine.base import Pair, PerPairRefinement, RefinementStep
from ..geometry.fastops import polygons_intersect_fast
from ..geometry.kernels import KernelDispatcher, get_kernels

#: clip-rectangle inflation for the edge pruning pretest.  Must exceed
#: the eps-tolerance of the edge-pair predicate (2 x 1e-12) by a wide
#: margin so pruning can never drop a decisive edge; scaled with the
#: coordinate magnitude because orientation-sign noise grows ~quadratic
#: in it (same reasoning as the batched filter's circle margin).
_CLIP_MARGIN = 1e-9
_CLIP_MARGIN_REL = 1e-13

EdgeSet = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class RingGeometry:
    """Per-object edge arrays gathered lazily from packed ring columns.

    One instance wraps one relation's :class:`RingColumns` plus a map
    from live object identity to column row.  ``edges(row)`` returns the
    object's edges — all rings, ``start -> end``, the exact vertex order
    of ``Polygon.edges()`` — as four flat float arrays; ``bounds(row)``
    the bounding box over *all* rings (holes included, unlike the
    shell-only object MBR, because pruning must cover hole edges too).
    Gathered arrays are cached per row and are always copies of the
    column data, so a shared-memory backed instance can be
    :meth:`release`-d and the segment unmapped once the join is done.
    """

    def __init__(self, columns: RingColumns, rows: Mapping[int, int]):
        self._columns: Optional[RingColumns] = columns
        self._rows: Dict[int, int] = dict(rows)
        self._edges: Dict[int, EdgeSet] = {}
        self._bounds: Dict[int, Tuple[float, float, float, float]] = {}

    @classmethod
    def from_store(cls, store: ColumnarRelation) -> "RingGeometry":
        """Geometry over a relation's cached columnar store."""
        rows = {id(obj): i for i, obj in enumerate(store.objects)}
        return cls(store.rings, rows)

    def row_of(self, obj) -> Optional[int]:
        """Column row of a live object, or ``None`` if unmapped."""
        return self._rows.get(id(obj))

    def edges(self, row: int) -> EdgeSet:
        """``(x1, y1, x2, y2)`` arrays of the object's edges (cached)."""
        cached = self._edges.get(row)
        if cached is None:
            cols = self._columns
            first = int(cols.object_rings[row])
            last = int(cols.object_rings[row + 1])
            xs: List[np.ndarray] = []
            ys: List[np.ndarray] = []
            xe: List[np.ndarray] = []
            ye: List[np.ndarray] = []
            for r in range(first, last):
                span = cols.ring_xy[cols.ring_offsets[r]:cols.ring_offsets[r + 1]]
                xs.append(span[:, 0])
                ys.append(span[:, 1])
                xe.append(np.roll(span[:, 0], -1))
                ye.append(np.roll(span[:, 1], -1))
            # np.concatenate always allocates, so the cache never holds
            # views into a (possibly shared-memory) column buffer.
            cached = (
                np.concatenate(xs),
                np.concatenate(ys),
                np.concatenate(xe),
                np.concatenate(ye),
            )
            self._edges[row] = cached
        return cached

    def bounds(self, row: int) -> Tuple[float, float, float, float]:
        """Bounding box over all of the object's rings (cached)."""
        cached = self._bounds.get(row)
        if cached is None:
            cols = self._columns
            first = int(cols.ring_offsets[cols.object_rings[row]])
            last = int(cols.ring_offsets[cols.object_rings[row + 1]])
            span = cols.ring_xy[first:last]
            cached = (
                float(span[:, 0].min()),
                float(span[:, 1].min()),
                float(span[:, 0].max()),
                float(span[:, 1].max()),
            )
            self._bounds[row] = cached
        return cached

    def release(self) -> None:
        """Drop the column reference (caches are copies and survive)."""
        self._columns = None


class BatchedRefinement(RefinementStep):
    """Vectorized exact step over batches of remaining candidates.

    Implements the ``vectorized`` exact semantics
    (:func:`polygons_intersect_fast`) for the ``intersects`` predicate;
    the ``within`` predicate and pairs whose objects are missing from
    the ring columns resolve through the scalar per-pair backend inside
    the batch.
    """

    def __init__(
        self,
        config: JoinConfig,
        geometry_a: RingGeometry,
        geometry_b: RingGeometry,
    ):
        self.config = config
        self.batch_capacity = config.exact_batch
        self._geometry = (geometry_a, geometry_b)
        self._scalar = PerPairRefinement(config)
        # All bulk kernels route through the configured backend; every
        # backend decides identically (repro.geometry.kernels).
        self._kernels = KernelDispatcher(get_kernels(config.kernels))

    @classmethod
    def from_relations(
        cls, config: JoinConfig, relation_a, relation_b
    ) -> "BatchedRefinement":
        """Refinement bound to the relations' cached columnar stores."""
        return cls(
            config,
            RingGeometry.from_store(relation_a.columnar()),
            RingGeometry.from_store(relation_b.columnar()),
        )

    def release(self) -> None:
        for geometry in self._geometry:
            geometry.release()

    # -- batch resolution ---------------------------------------------------

    def resolve_batch(
        self, pairs: Sequence[Pair], stats: MultiStepStats
    ) -> List[bool]:
        stats.refine_batches += 1
        stats.refine_batch_pairs += len(pairs)
        self._kernels.bind(stats)
        if self.config.predicate == "within":
            stats.refine_fallback_pairs += len(pairs)
            return self._scalar.resolve_batch(pairs, stats)
        return self._resolve_intersects(pairs, stats)

    def _resolve_intersects(
        self, pairs: Sequence[Pair], stats: MultiStepStats
    ) -> List[bool]:
        geometry_a, geometry_b = self._geometry
        n = len(pairs)
        results = np.zeros(n, dtype=bool)
        mbr_a = np.empty((n, 4))
        mbr_b = np.empty((n, 4))
        for i, (obj_a, obj_b) in enumerate(pairs):
            m = obj_a.mbr
            mbr_a[i] = (m.xmin, m.ymin, m.xmax, m.ymax)
            m = obj_b.mbr
            mbr_b[i] = (m.xmin, m.ymin, m.xmax, m.ymax)
        overlap = self._kernels.rects_intersect_bulk(mbr_a, mbr_b)
        #: bulk point-in-polygon queries: (pair idx, geometry, row, point).
        contains: List[Tuple[int, RingGeometry, int, Tuple[float, float]]] = []
        contain_mbrs: List[np.ndarray] = []
        for i, (obj_a, obj_b) in enumerate(pairs):
            row_a = geometry_a.row_of(obj_a)
            row_b = geometry_b.row_of(obj_b)
            if row_a is None or row_b is None:
                stats.refine_fallback_pairs += 1
                results[i] = polygons_intersect_fast(
                    obj_a.polygon, obj_b.polygon
                )
                continue
            if not overlap[i]:
                continue
            if self._edges_intersect(
                geometry_a, row_a, geometry_b, row_b
            ):
                results[i] = True
                continue
            # Containment fallback: same MBR-containment guards and the
            # same probe vertex (the other shell's first) as the scalar
            # polygons_intersect_fast.
            if _rect_contains_row(mbr_b[i], mbr_a[i]):
                contains.append(
                    (i, geometry_b, row_b, obj_a.polygon.shell[0])
                )
                contain_mbrs.append(mbr_b[i])
            if _rect_contains_row(mbr_a[i], mbr_b[i]):
                contains.append(
                    (i, geometry_a, row_a, obj_b.polygon.shell[0])
                )
                contain_mbrs.append(mbr_a[i])
        if contains:
            inside = _contains_bulk(
                contains, np.array(contain_mbrs), self._kernels
            )
            for (i, _, _, _), hit in zip(contains, inside):
                if hit:
                    results[i] = True
        return [bool(r) for r in results]

    def _edges_intersect(
        self,
        geometry_a: RingGeometry,
        row_a: int,
        geometry_b: RingGeometry,
        row_b: int,
    ) -> bool:
        """MBR-clipped edge-pair matrix test for one candidate pair."""
        ax1, ay1, ax2, ay2 = geometry_a.edges(row_a)
        bx1, by1, bx2, by2 = geometry_b.edges(row_b)
        bounds_a = geometry_a.bounds(row_a)
        bounds_b = geometry_b.bounds(row_b)
        scale = max(
            abs(bounds_a[0]), abs(bounds_a[2]),
            abs(bounds_b[0]), abs(bounds_b[2]),
            abs(bounds_a[1]), abs(bounds_a[3]),
            abs(bounds_b[1]), abs(bounds_b[3]),
            1.0,
        )
        margin = max(_CLIP_MARGIN, scale * scale * _CLIP_MARGIN_REL)
        xmin = max(bounds_a[0], bounds_b[0]) - margin
        ymin = max(bounds_a[1], bounds_b[1]) - margin
        xmax = min(bounds_a[2], bounds_b[2]) + margin
        ymax = min(bounds_a[3], bounds_b[3]) + margin
        mask_a = self._kernels.edges_overlapping_rect_mask(
            ax1, ay1, ax2, ay2, xmin, ymin, xmax, ymax
        )
        if not mask_a.any():
            return False
        mask_b = self._kernels.edges_overlapping_rect_mask(
            bx1, by1, bx2, by2, xmin, ymin, xmax, ymax
        )
        if not mask_b.any():
            return False
        return self._kernels.edge_matrix_intersect_any(
            ax1[mask_a], ay1[mask_a], ax2[mask_a], ay2[mask_a],
            bx1[mask_b], by1[mask_b], bx2[mask_b], by2[mask_b],
        )


def _rect_contains_row(outer: np.ndarray, inner: np.ndarray) -> bool:
    """Scalar ``Rect.contains_rect`` on two ``(xmin, ymin, xmax, ymax)`` rows."""
    return bool(
        outer[0] <= inner[0]
        and outer[1] <= inner[1]
        and inner[2] <= outer[2]
        and inner[3] <= outer[3]
    )


def _contains_bulk(
    queries: Sequence[Tuple[int, RingGeometry, int, Tuple[float, float]]],
    mbrs: np.ndarray,
    kernels: KernelDispatcher,
) -> np.ndarray:
    """One bulk point-in-polygon call over the batch's containment queries."""
    px = np.array([point[0] for _, _, _, point in queries])
    py = np.array([point[1] for _, _, _, point in queries])
    edge_parts: List[List[np.ndarray]] = [[], [], [], []]
    qidx_parts: List[np.ndarray] = []
    for q, (_, geometry, row, _) in enumerate(queries):
        edge_set = geometry.edges(row)
        for part, arr in zip(edge_parts, edge_set):
            part.append(arr)
        qidx_parts.append(np.full(len(edge_set[0]), q, dtype=np.intp))
    ex1, ey1, ex2, ey2 = (np.concatenate(p) for p in edge_parts)
    qidx = np.concatenate(qidx_parts)
    return kernels.points_in_polygons_bulk(
        px, py, qidx, ex1, ey1, ex2, ey2, mbrs
    )
