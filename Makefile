# Entry points for the growing test suite and the benchmarks.
#
#   make test          - full suite (tier-1 gate; includes slow fuzz tests)
#   make test-fast     - quick suite: everything except @pytest.mark.slow
#   make test-parallel - multi-process tile-executor tests (@pytest.mark.parallel)
#   make serve-smoke   - start the join service, drive one request, shut down
#   make bench-engine  - streaming-vs-batched engine benchmark, quick scale
#   make bench-parallel - measured vs LPT-modeled parallel speedup, quick scale
#   make bench-columnar - columnar wire-format + repack benchmark, quick scale
#   make bench-refine  - scalar vs batched exact-step benchmark, quick scale
#   make bench-kernels - numpy vs compiled kernel throughput, quick scale
#   make bench-session - warm-session reuse + scheduler benchmark, quick scale
#   make bench-tree    - grid vs tree-guided task formation benchmark, quick scale
#   make bench-service - concurrent join-service benchmark, quick scale
#   make bench-proximity - parallel distance/kNN join benchmark, quick scale
#   make bench-store   - persistent-store warm-start benchmark, quick scale

PYTEST = PYTHONPATH=src python -m pytest

.PHONY: test test-fast test-parallel serve-smoke bench-engine bench-parallel \
	bench-columnar bench-refine bench-kernels bench-session bench-tree \
	bench-service bench-proximity bench-store

test:
	$(PYTEST) -x -q

test-fast:
	$(PYTEST) -x -q -m "not slow"

test-parallel:
	$(PYTEST) -q -m parallel

serve-smoke:
	PYTHONPATH=src python scripts/serve_smoke.py

bench-engine:
	REPRO_BENCH_SCALE=quick $(PYTEST) -q benchmarks/bench_engine_batched.py

bench-parallel:
	REPRO_BENCH_SCALE=quick $(PYTEST) -q benchmarks/bench_parallel_exec.py

bench-columnar:
	REPRO_BENCH_SCALE=quick $(PYTEST) -q benchmarks/bench_columnar.py

bench-refine:
	REPRO_BENCH_SCALE=quick $(PYTEST) -q benchmarks/bench_refine.py

bench-kernels:
	REPRO_BENCH_SCALE=quick $(PYTEST) -q benchmarks/bench_kernels.py

bench-session:
	REPRO_BENCH_SCALE=quick $(PYTEST) -q benchmarks/bench_session.py

bench-tree:
	REPRO_BENCH_SCALE=quick $(PYTEST) -q benchmarks/bench_tree_partition.py

bench-service:
	REPRO_BENCH_SCALE=quick $(PYTEST) -q benchmarks/bench_service.py

bench-proximity:
	REPRO_BENCH_SCALE=quick $(PYTEST) -q benchmarks/bench_proximity.py

bench-store:
	REPRO_BENCH_SCALE=quick $(PYTEST) -q benchmarks/bench_store.py
