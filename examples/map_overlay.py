"""Map overlay: the GIS workload that motivates the paper's introduction.

"Find all forests which are in a city": two thematic layers — synthetic
municipalities ("cities") and synthetic vegetation patches ("forests")
— are joined with the intersection predicate, and the result is grouped
per city, exactly the building block a GIS map-overlay operator needs.

The example also contrasts the cost of three processor configurations
on the same workload, reproducing the paper's §5 story at laptop scale.

Run:  python examples/map_overlay.py
"""

import time

from repro import FilterConfig, JoinConfig, SpatialJoinProcessor
from repro.core import NO_FILTER
from repro.datasets import SpatialRelation, cartographic_polygons


def build_layers():
    """Two thematic layers over the same unit data space."""
    cities = SpatialRelation(
        "Cities",
        cartographic_polygons(
            n_objects=90, mean_vertices=60, coverage=0.8, seed=2024
        ),
    )
    # Forests: smaller, patchier polygons scattered over the same space.
    forests = SpatialRelation(
        "Forests",
        [
            poly.scaled(0.55)
            for poly in cartographic_polygons(
                n_objects=220, mean_vertices=40, coverage=0.9, seed=77
            )
        ],
    )
    return cities, forests


def overlay(cities, forests, config, label):
    processor = SpatialJoinProcessor(config)
    start = time.perf_counter()
    result = processor.join(forests, cities)
    elapsed = time.perf_counter() - start
    stats = result.stats
    print(
        f"{label:28s} {elapsed:6.2f}s  pairs={len(result):4d}  "
        f"filter identified {stats.identification_rate():4.0%}  "
        f"exact tests {stats.remaining_candidates:4d}"
    )
    return result


def main() -> None:
    cities, forests = build_layers()
    print(f"{cities!r}\n{forests!r}\n")

    # Preprocessing happens at object-insertion time in the paper's
    # architecture (approximations live in the SAM, TR*-trees on disk),
    # so it is paid once here, before the joins are timed.
    print("preprocessing layers (approximations + TR*-trees)...")
    start = time.perf_counter()
    for layer in (cities, forests):
        layer.precompute_approximations(["5-C", "MER"])
        for obj in layer:
            obj.trstar(3)
    print(f"  done in {time.perf_counter() - start:.1f}s\n")

    # The three §5 versions, from naive to the paper's recommendation.
    print("configuration                 time    result     filter        exact")
    overlay(
        cities,
        forests,
        JoinConfig(filter=NO_FILTER, exact_method="planesweep"),
        "v1: no filter + sweep",
    )
    overlay(
        cities,
        forests,
        JoinConfig(filter=FilterConfig(), exact_method="planesweep"),
        "v2: 5-C/MER + sweep",
    )
    result = overlay(
        cities,
        forests,
        JoinConfig(filter=FilterConfig(), exact_method="trstar"),
        "v3: 5-C/MER + TR*-tree",
    )

    # Group the overlay result per city, like a GIS operator would.
    per_city = {}
    for forest, city in result.pairs:
        per_city.setdefault(city.oid, []).append(forest.oid)
    busiest = sorted(per_city.items(), key=lambda kv: -len(kv[1]))[:5]
    print("\ncities intersecting the most forests:")
    for city_id, forest_ids in busiest:
        print(f"  city {city_id:3d}: {len(forest_ids)} forests "
              f"(e.g. {forest_ids[:6]})")

    # The paper's literal query is an *inclusion* join: "find all forests
    # which are in a city".  Same pipeline, predicate='within'.
    within = SpatialJoinProcessor(
        JoinConfig(predicate="within", filter=FilterConfig())
    ).join(forests, cities)
    fully_inside = {f.oid for f, _c in within.pairs}
    print(
        f"\nforests fully inside a city: {len(fully_inside)} of "
        f"{len(forests)} (vs {len({f.oid for f, _ in result.pairs})} "
        f"merely intersecting one)"
    )


if __name__ == "__main__":
    main()
