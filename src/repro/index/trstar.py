"""TR*-tree [SK 91] — main-memory tree over one object's trapezoids.

The TR*-tree is structurally an R*-tree with a very small maximum node
capacity (the paper finds M = 3 optimal, §4.2/Fig. 17) that organises the
trapezoid decomposition of a *single* polygon.  It is built once at
object-insertion time (preprocessing) and used by the exact geometry
processor to test two objects for intersection by a synchronised
traversal of their two TR*-trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..geometry import Rect
from .rstar import Node, RStarTree


class Trapezoid:
    """Trapezoid with two horizontal sides (decomposition component).

    Corners: ``(xl_bottom, y_bottom)``, ``(xr_bottom, y_bottom)``,
    ``(xr_top, y_top)``, ``(xl_top, y_top)``.  Degenerate triangles
    (one zero-length horizontal side) are allowed.
    """

    __slots__ = ("xl_bot", "xr_bot", "xl_top", "xr_top", "y_bot", "y_top", "_rect")

    def __init__(
        self,
        xl_bot: float,
        xr_bot: float,
        xl_top: float,
        xr_top: float,
        y_bot: float,
        y_top: float,
    ):
        self.xl_bot = xl_bot
        self.xr_bot = xr_bot
        self.xl_top = xl_top
        self.xr_top = xr_top
        self.y_bot = y_bot
        self.y_top = y_top
        self._rect: Optional[Rect] = None

    def corners(self) -> List[Tuple[float, float]]:
        """CCW corner list (duplicates removed for degenerate sides)."""
        pts = [
            (self.xl_bot, self.y_bot),
            (self.xr_bot, self.y_bot),
            (self.xr_top, self.y_top),
            (self.xl_top, self.y_top),
        ]
        out: List[Tuple[float, float]] = []
        for p in pts:
            if not out or (
                abs(p[0] - out[-1][0]) > 1e-15 or abs(p[1] - out[-1][1]) > 1e-15
            ):
                out.append(p)
        if (
            len(out) > 1
            and abs(out[0][0] - out[-1][0]) <= 1e-15
            and abs(out[0][1] - out[-1][1]) <= 1e-15
        ):
            out.pop()
        return out

    def mbr(self) -> Rect:
        if self._rect is None:
            self._rect = Rect(
                min(self.xl_bot, self.xl_top),
                self.y_bot,
                max(self.xr_bot, self.xr_top),
                self.y_top,
            )
        return self._rect

    def area(self) -> float:
        return (
            ((self.xr_bot - self.xl_bot) + (self.xr_top - self.xl_top))
            / 2.0
            * (self.y_top - self.y_bot)
        )

    def intersects(self, other: "Trapezoid") -> bool:
        """Convex SAT intersection test between two trapezoids."""
        from ..geometry import convex_intersect

        a = self.corners()
        b = other.corners()
        if len(a) < 3 or len(b) < 3:
            return self.mbr().intersects(other.mbr())
        return convex_intersect(a, b)

    def __repr__(self) -> str:
        return (
            f"Trapezoid(y=[{self.y_bot:.4g},{self.y_top:.4g}], "
            f"bot=[{self.xl_bot:.4g},{self.xr_bot:.4g}], "
            f"top=[{self.xl_top:.4g},{self.xr_top:.4g}])"
        )


class TRStarTree(RStarTree):
    """Main-memory R*-tree variant storing trapezoids in its leaves."""

    def __init__(self, max_entries: int = 3):
        # The TR*-tree uses the same tiny capacity for leaves and
        # directory nodes; min fill of 40% rounds to 1 for M=3.
        super().__init__(
            max_entries=max_entries,
            min_entries=max(1, int(max_entries * 0.4)),
            directory_max=max_entries,
        )

    @classmethod
    def build(
        cls, trapezoids: Sequence[Trapezoid], max_entries: int = 3
    ) -> "TRStarTree":
        """Build a TR*-tree from a trapezoid decomposition."""
        tree = cls(max_entries=max_entries)
        for trap in trapezoids:
            tree.insert(trap.mbr(), trap)
        return tree

    def trapezoids(self) -> Iterator[Trapezoid]:
        for entry in self.all_entries():
            yield entry.item

    @property
    def average_height(self) -> int:
        return self.height


@dataclass
class TRJoinCounters:
    """Operation counters of one TR*-tree intersection test (§4.3)."""

    rect_tests: int = 0
    trapezoid_tests: int = 0

    def reset(self) -> None:
        self.rect_tests = 0
        self.trapezoid_tests = 0


def trstar_trees_intersect(
    tree_a: TRStarTree,
    tree_b: TRStarTree,
    counters: Optional[TRJoinCounters] = None,
) -> bool:
    """Synchronised traversal: do any two trapezoids intersect?

    The guiding property (§4.2): if the rectangles of two entries do not
    intersect, no trapezoid pair below them can intersect.  The search
    stops at the first intersecting trapezoid pair.
    """
    if counters is None:
        counters = TRJoinCounters()
    if tree_a.size == 0 or tree_b.size == 0:
        return False
    return _nodes_intersect(tree_a.root, tree_b.root, counters)


def _nodes_intersect(
    node_a: Node, node_b: Node, counters: TRJoinCounters
) -> bool:
    counters.rect_tests += 1
    inter = node_a.mbr().intersection(node_b.mbr())
    if inter is None:
        return False

    if node_a.is_leaf and node_b.is_leaf:
        for ea in node_a.entries:
            counters.rect_tests += 1
            if not ea.rect.intersects(inter):
                continue
            for eb in node_b.entries:
                counters.rect_tests += 1
                if not ea.rect.intersects(eb.rect):
                    continue
                counters.trapezoid_tests += 1
                if ea.item.intersects(eb.item):
                    return True
        return False

    if not node_a.is_leaf and (node_b.is_leaf or node_a.level >= node_b.level):
        for child in node_a.children:
            counters.rect_tests += 1
            if child.mbr().intersects(node_b.mbr()):
                if _nodes_intersect(child, node_b, counters):
                    return True
        return False

    for child in node_b.children:
        counters.rect_tests += 1
        if child.mbr().intersects(node_a.mbr()):
            if _nodes_intersect(node_a, child, counters):
                return True
    return False
