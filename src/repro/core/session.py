"""Join sessions: a serving-oriented runtime for repeated parallel joins.

The paper's §6 outlook motivates parallel multi-step joins; the
one-shot executor in :mod:`repro.core.parallel_exec` realises it, but
pays the full setup on every call — a fresh
:class:`~concurrent.futures.ProcessPoolExecutor` is forked, each
relation's ring columns are copied into fresh shared-memory segments,
and everything is torn down again when the join returns.  Serving
workloads (many joins against a slowly-changing set of relations) are
session-oriented: the setup should be paid once and amortised.

:class:`JoinSession` is that context.  It owns

* a **persistent worker pool**, created lazily on the first join that
  needs one and reused by every following join at the same worker
  count (a join with a different count transparently rebuilds it, and
  a pool broken by a dead worker process is replaced on next use);
* a **shared-segment cache** keyed by relation *fingerprint*
  (:attr:`repro.datasets.columnar.ColumnarRelation.fingerprint`, a
  content digest of the packed ring columns): the first join of a
  relation copies its geometry into a
  :class:`~repro.core.parallel_exec.SharedRelationSegment`, and every
  later join of the same content ships **zero redundant bytes** — the
  tile tasks simply reference the cached segment.  A relation whose
  object list changed gets a fresh fingerprint (and so a fresh
  segment); the stale segment stays cached until evicted.

The cache is **byte-bounded LRU** when ``max_cache_bytes`` is set:
whenever the cached bytes exceed the bound, least-recently-joined
segments are unlinked first (``segment_cache_evictions`` counts them)
until the cache fits.  Unbounded sessions (the default) keep the old
keep-everything behaviour plus manual :meth:`evict`.  Segments of the
join *currently running* are never evicted: the executor takes a
:class:`SegmentLease` over both relations, which pins their
fingerprints until the join's outcomes are merged — without the pin,
shipping a large second relation could unlink the first relation's
segment while tile tasks still reference it.

Lifecycle is explicit: use the session as a context manager (or call
:meth:`close`), after which the pool is shut down and every cached
segment is unlinked — ``live_shared_segments()`` is empty again, the
same leak-free guarantee the one-shot path has
(``tests/test_parallel_exec_shm.py`` and the autouse leak fixture in
``tests/conftest.py`` enforce it).

Results are untouched by any of this: a warm session join is
byte-identical — pairs, order, and merged
:class:`~repro.core.stats.MultiStepStats` — to the serial partitioned
join (``tests/test_session_scheduler_equivalence.py`` is the
differential suite).

Usage::

    with JoinSession(config=JoinConfig(workers=4)) as session:
        first = session.join(rel_a, rel_b)    # forks pool, ships segments
        warm = session.join(rel_a, rel_b)     # reuses both: 0 new bytes
        other = session.join(rel_a, rel_c)    # ships only rel_c

    python -m repro join-batch a.wkt b.wkt --repeat 5 --workers 4

``benchmarks/bench_session.py`` measures the first-join vs warm-join
latency and the static vs stealing schedulers on a skewed grid
(report: ``benchmarks/reports/session.txt``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..datasets.relations import SpatialRelation
from .join import JoinConfig
from .parallel_exec import (
    ParallelPartitionedJoinResult,
    SharedRelationSegment,
    _pool_context,
    _warm_worker_kernels,
    parallel_partitioned_join,
    segment_column_layout,
)


class SegmentLease:
    """Pins one join's shared segments in the session cache.

    Acquiring the lease resolves (or creates) the segment of every
    relation and marks its fingerprint as *leased*: LRU eviction skips
    leased fingerprints, so a bounded cache can never unlink a segment
    the in-flight join's tile tasks still reference.  :meth:`release`
    unpins and then re-applies the byte bound, so the post-join
    invariant ``cached_segment_bytes <= max_cache_bytes`` holds (unless
    the just-joined segments alone exceed the bound, which no eviction
    policy could fix).
    """

    def __init__(self, session: "JoinSession",
                 relations: Sequence[SpatialRelation]):
        self._session = session
        self._fingerprints: List[str] = []
        #: the relations' segments, in ``relations`` order.
        self.segments: List[SharedRelationSegment] = []
        #: per segment: True when served from the cache (no new bytes).
        self.reused: List[bool] = []
        try:
            with session._lock:
                for relation in relations:
                    fingerprint = relation.columnar().fingerprint
                    segment, reused = session._acquire(relation, fingerprint)
                    session._leased[fingerprint] = (
                        session._leased.get(fingerprint, 0) + 1
                    )
                    self._fingerprints.append(fingerprint)
                    self.segments.append(segment)
                    self.reused.append(reused)
                session._evict_to_bound()
        except BaseException:
            self.release()
            raise

    def release(self) -> None:
        """Unpin the leased segments and re-apply the cache bound."""
        with self._session._lock:
            fingerprints, self._fingerprints = self._fingerprints, []
            leased = self._session._leased
            for fingerprint in fingerprints:
                count = leased.get(fingerprint, 0) - 1
                if count <= 0:
                    leased.pop(fingerprint, None)
                else:
                    leased[fingerprint] = count
            if fingerprints and not self._session.closed:
                self._session._evict_to_bound()


def _stream_page(job: Tuple[object, SharedRelationSegment, int, int]) -> None:
    """Read one store page file into its slice of a shared segment.

    One unit of the warm loader's I/O parallelism: ``readinto`` drops
    the GIL while the kernel fills the shared-memory slice, so a small
    thread pool genuinely overlaps page reads.  The exported buffer
    view is released before returning — segment teardown must never
    trip over a dangling export (``BufferError``).
    """
    from ..datasets.store import StoreCorruptionError

    path, segment, offset, nbytes = job
    view = memoryview(segment.buf)[offset:offset + nbytes]
    try:
        with open(path, "rb", buffering=0) as page:
            read = page.readinto(view)
        if read != nbytes:
            raise StoreCorruptionError(
                f"short read from store page {path}: got {read} of "
                f"{nbytes} bytes (page changed after validation?)"
            )
    finally:
        view.release()


class JoinSession:
    """Long-lived context amortising parallel-join setup across joins.

    See the module docstring for the model.  All state lives in the
    creating process; worker processes stay stateless.  Cache, pool and
    telemetry mutation is guarded by a reentrant lock and :meth:`join`
    holds it end-to-end, so a session can be handed between threads (the
    :class:`repro.service.JoinService` executor does) and still runs
    exactly one join at a time — concurrency comes from a *pool* of
    sessions, not from sharing one.
    """

    def __init__(
        self,
        config: Optional[JoinConfig] = None,
        workers: Optional[int] = None,
        max_cache_bytes: Optional[int] = None,
    ):
        config = config or JoinConfig()
        if workers is not None:
            config = replace(config, workers=workers)
        if config.session is not None:
            # A session's default config must not point at another
            # session (or itself) — joins run inside *this* one.
            config = replace(config, session=None)
        if max_cache_bytes is not None and max_cache_bytes < 0:
            raise ValueError(
                f"max_cache_bytes must be >= 0, got {max_cache_bytes}"
            )
        self.config = config
        #: byte bound of the segment cache (None = unbounded).
        self.max_cache_bytes = max_cache_bytes
        #: serialises joins and cache/pool mutation across threads: a
        #: session runs **one join at a time** — concurrency comes from
        #: using several sessions (see :mod:`repro.service`).  Reentrant
        #: because the executor calls back into :meth:`pool` /
        #: :meth:`lease_segments` while :meth:`join` holds the lock.
        self._lock = threading.RLock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0
        self._pool_kernels: Optional[str] = None
        #: fingerprint -> segment, least-recently-joined first.
        self._segments: "OrderedDict[str, SharedRelationSegment]" = (
            OrderedDict()
        )
        #: fingerprints pinned by in-flight joins (lease reference counts).
        self._leased: Dict[str, int] = {}
        self._closed = False
        #: telemetry, cumulative over the session's lifetime.
        self.joins_run = 0
        self.segment_cache_hits = 0
        self.segment_cache_misses = 0
        self.segment_cache_evictions = 0
        self.pools_created = 0
        #: segments populated from persistent-store pages
        #: (:meth:`warm_from_store`) and the bytes they streamed in.
        self.store_loads = 0
        self.store_load_bytes = 0

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "JoinSession":
        self._ensure_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Shut the pool down and unlink every cached segment (idempotent)."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
            self._pool_workers = 0
            self._pool_kernels = None
            if pool is not None:
                pool.shutdown(wait=True)
            segments, self._segments = self._segments, OrderedDict()
            self._leased = {}
            for segment in segments.values():
                segment.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "JoinSession is closed; create a new session to keep joining"
            )

    # -- joins --------------------------------------------------------------

    def join(
        self,
        relation_a: SpatialRelation,
        relation_b: SpatialRelation,
        grid: Optional[Tuple[int, int]] = None,
        config: Optional[JoinConfig] = None,
        workers: Optional[int] = None,
    ) -> ParallelPartitionedJoinResult:
        """One partitioned join inside this session.

        Defaults come from the session's config; ``grid``, ``config``
        and ``workers`` override per call.  Identical results to the
        sessionless :func:`~repro.core.parallel_exec.parallel_partitioned_join`
        — only the resource lifecycle differs.

        Thread-safe: the session lock is held for the whole join, so a
        session handed between threads (the :mod:`repro.service`
        executor does this) runs one join at a time and its cache/pool
        state never interleaves mid-join.
        """
        with self._lock:
            self._ensure_open()
            cfg = config or self.config
            if workers is not None:
                cfg = replace(cfg, workers=workers)
            if cfg.session is not None:
                cfg = replace(cfg, session=None)
            return parallel_partitioned_join(
                relation_a, relation_b, grid=grid, config=cfg, session=self
            )

    # -- pooled resources ---------------------------------------------------

    def pool(
        self, n_workers: int, kernels: str = "numpy"
    ) -> ProcessPoolExecutor:
        """The persistent worker pool, (re)built for ``n_workers``.

        Reused as long as consecutive joins ask for the same worker
        count *and* kernel backend; a different count (or backend —
        workers pre-warm ``kernels`` once at start-up, so a backend
        switch needs fresh workers) shuts the old pool down and forks a
        fresh one.  A pool broken by a dying worker process is
        discarded by the executor when the ``BrokenExecutor`` surfaces
        (see ``parallel_exec._dispatch``), so the next join rebuilds it
        here; the private broken flag is only probed as an extra
        belt-and-braces check.
        """
        with self._lock:
            self._ensure_open()
            broken = self._pool is not None and getattr(
                self._pool, "_broken", False
            )
            if self._pool is not None and (
                broken
                or self._pool_workers != n_workers
                or self._pool_kernels != kernels
            ):
                self._discard_pool()
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=n_workers,
                    mp_context=_pool_context(),
                    initializer=_warm_worker_kernels,
                    initargs=(kernels,),
                )
                self._pool_workers = n_workers
                self._pool_kernels = kernels
                self.pools_created += 1
            return self._pool

    def _discard_pool(self) -> None:
        """Drop the current pool so the next join forks a fresh one.

        Shuts down with ``wait=True`` (cancelling still-queued tasks):
        a fire-and-forget ``wait=False`` returned while old workers
        could still be mapping shared segments, so a rebuild (or
        :meth:`close`) racing an in-flight future could unlink a
        segment under a live mapping — spurious ``FileNotFoundError``
        / ``BufferError`` on teardown.  Waiting drains the workers
        before any segment lifecycle decision can follow.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            self._pool_workers = 0
            self._pool_kernels = None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def segment_for(
        self, relation: SpatialRelation
    ) -> Tuple[SharedRelationSegment, bool]:
        """The cached shared segment for the relation's current content.

        Returns ``(segment, reused)``: ``reused`` is False exactly when
        this call copied the relation's ring columns into a fresh
        segment.  The segment's lifecycle belongs to the session — do
        not close it; it is unlinked by LRU eviction, :meth:`evict` or
        :meth:`close`.  (The executor uses :meth:`lease_segments`
        instead, which additionally pins the segments for the join's
        duration.)
        """
        with self._lock:
            self._ensure_open()
            fingerprint = relation.columnar().fingerprint
            segment, reused = self._acquire(relation, fingerprint)
            self._evict_to_bound(protect=frozenset((fingerprint,)))
            return segment, reused

    def lease_segments(
        self, relations: Sequence[SpatialRelation]
    ) -> SegmentLease:
        """Acquire (and pin) the segments of one join's relations.

        The returned :class:`SegmentLease` keeps the fingerprints safe
        from LRU eviction until :meth:`SegmentLease.release` — call it
        in a ``finally`` once the join's outcomes are merged.
        """
        self._ensure_open()
        return SegmentLease(self, relations)

    # -- persistent-store warm-up -------------------------------------------

    def warm_from_store(
        self,
        store,
        fingerprints: Optional[Iterable[str]] = None,
        io_workers: int = 4,
    ) -> Dict[str, str]:
        """Populate the segment cache straight from persistent-store pages.

        The cold-start shortcut: for every requested fingerprint not
        already cached, an uninitialised shared segment is allocated
        (:meth:`SharedRelationSegment.allocate`) and the relation's ring
        pages from ``store`` (a
        :class:`~repro.datasets.store.RelationStore`) are streamed
        directly into its buffer — ``readinto`` on the raw page files,
        no WKT parsing, no :func:`~repro.datasets.columnar.pack_rings`,
        no digesting.  Page reads run concurrently on a small thread
        pool (``io_workers``; ``readinto`` releases the GIL, so the
        reads genuinely overlap), across columns *and* relations.

        Returns ``{fingerprint: "loaded" | "cached"}``.  ``fingerprints``
        defaults to everything in the store.  On any failure all freshly
        allocated segments are unlinked and the cache is exactly as
        before — a corrupted store warms nothing rather than something
        wrong (the store validates manifests and page sizes up front,
        and short reads fail here).

        A later :meth:`join` whose relation content matches a warmed
        fingerprint ships zero bytes: the lease finds the segment in the
        cache (a ``segment_cache_hit``), exactly as if a previous join
        had shipped it.  Warm loads are counted separately
        (``store_loads`` / ``store_load_bytes``) so warm-start wins stay
        observable in :meth:`stats`.
        """
        with self._lock:
            self._ensure_open()
            wanted = (
                list(fingerprints)
                if fingerprints is not None
                else store.fingerprints()
            )
            report: Dict[str, str] = {}
            fresh: "OrderedDict[str, SharedRelationSegment]" = OrderedDict()
            jobs: List[Tuple[object, SharedRelationSegment, int, int]] = []
            try:
                for fingerprint in wanted:
                    if fingerprint in report:
                        continue
                    if fingerprint in self._segments:
                        self._segments.move_to_end(fingerprint)
                        report[fingerprint] = "cached"
                        continue
                    stored = store.load(fingerprint)
                    segment = SharedRelationSegment.allocate(
                        stored.name,
                        fingerprint,
                        stored.n_objects,
                        stored.n_rings,
                        stored.n_points,
                    )
                    fresh[fingerprint] = segment
                    report[fingerprint] = "loaded"
                    pages = {
                        page.column: page for page in stored.ring_pages()
                    }
                    # Page extents and segment slices both derive from
                    # the manifest counts, so the mapping is exact.
                    for column, offset, nbytes in segment_column_layout(
                        stored.n_objects, stored.n_rings, stored.n_points
                    ):
                        jobs.append(
                            (pages[column].path, segment, offset, nbytes)
                        )
                if len(jobs) > 1 and io_workers > 1:
                    with ThreadPoolExecutor(
                        max_workers=min(io_workers, len(jobs))
                    ) as io_pool:
                        # list() re-raises the first worker exception.
                        list(io_pool.map(_stream_page, jobs))
                else:
                    for job in jobs:
                        _stream_page(job)
            except BaseException:
                for fingerprint, segment in fresh.items():
                    report.pop(fingerprint, None)
                    segment.close()
                raise
            for fingerprint, segment in fresh.items():
                self._segments[fingerprint] = segment
                self.store_loads += 1
                self.store_load_bytes += segment.nbytes
            self._evict_to_bound(protect=frozenset(fresh))
            return report

    def _acquire(
        self, relation: SpatialRelation, fingerprint: str
    ) -> Tuple[SharedRelationSegment, bool]:
        """Cache lookup/insert without applying the byte bound."""
        segment = self._segments.get(fingerprint)
        if segment is not None:
            self._segments.move_to_end(fingerprint)
            self.segment_cache_hits += 1
            return segment, True
        segment = SharedRelationSegment(relation)
        self._segments[fingerprint] = segment
        self.segment_cache_misses += 1
        return segment, False

    def _evict_to_bound(self, protect: frozenset = frozenset()) -> None:
        """Unlink least-recently-joined segments until the cache fits.

        Leased (in-flight) and explicitly protected fingerprints are
        never victims; if only those remain, the cache is allowed to
        exceed the bound until the leases release.
        """
        if self.max_cache_bytes is None:
            return
        while self.cached_segment_bytes > self.max_cache_bytes:
            victim = next(
                (
                    fingerprint
                    for fingerprint in self._segments
                    if fingerprint not in protect
                    and fingerprint not in self._leased
                ),
                None,
            )
            if victim is None:
                return
            self._segments.pop(victim).close()
            self.segment_cache_evictions += 1

    def evict(self, relation: SpatialRelation) -> bool:
        """Unlink the cached segment of this relation's current content.

        Returns True when a segment was cached (and is now gone); use
        it to bound the cache when a relation will not be joined again.

        A fingerprint pinned by an in-flight join's
        :class:`SegmentLease` is **refused** (returns False): unlinking
        it would pull shared memory out from under live tile tasks.
        (An earlier version popped and closed the segment regardless of
        leases — an explicit evict racing a join could corrupt it.)
        Call again once the join has finished if the segment should
        still go.
        """
        with self._lock:
            self._ensure_open()
            fingerprint = relation.columnar().fingerprint
            if fingerprint in self._leased:
                return False
            segment = self._segments.pop(fingerprint, None)
            if segment is None:
                return False
            segment.close()
            return True

    # -- telemetry ----------------------------------------------------------

    @property
    def cached_relations(self) -> int:
        """Number of relations with a live cached segment."""
        return len(self._segments)

    @property
    def cached_segment_bytes(self) -> int:
        """Total shared-memory bytes currently cached."""
        return sum(segment.nbytes for segment in self._segments.values())

    def stats(self) -> Dict[str, int]:
        """Cumulative telemetry, one flat JSON-safe dict.

        The observable record of warm-start wins: cache ``hits`` count
        joins that shipped zero redundant bytes, ``store_loads`` /
        ``store_load_bytes`` count segments streamed from persistent
        store pages (:meth:`warm_from_store`), ``evictions`` count
        byte-bound LRU victims.  The service status endpoint aggregates
        these across its session pool.
        """
        with self._lock:
            return {
                "joins_run": self.joins_run,
                "segment_cache_hits": self.segment_cache_hits,
                "segment_cache_misses": self.segment_cache_misses,
                "segment_cache_evictions": self.segment_cache_evictions,
                "store_loads": self.store_loads,
                "store_load_bytes": self.store_load_bytes,
                "pools_created": self.pools_created,
                "cached_relations": self.cached_relations,
                "cached_segment_bytes": self.cached_segment_bytes,
            }

    def _note_join(self) -> None:
        with self._lock:
            self.joins_run += 1

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"JoinSession({state}, joins={self.joins_run}, "
            f"cached_relations={self.cached_relations}, "
            f"pool_workers={self._pool_workers or None})"
        )
