"""Map overlay — the GIS operation the paper's join is a building block of.

Section 2 of the paper: spatial queries "serve as building blocks for
more complex and application-defined operations, e.g. for the map
overlay in a geographic information system".  This module completes that
story: the multi-step join processor finds the intersecting pairs, the
clipper (:mod:`repro.geometry.clipping`) computes each pair's
intersection region, and the overlay assembles the result layer.

Because the join already classifies pairs through the filter pipeline,
the overlay inherits every speed-up of the paper for free; only pairs
that truly intersect reach the (expensive) region computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..datasets.relations import SpatialObject, SpatialRelation
from ..geometry import Polygon
from ..geometry.clipping import (
    ClippingError,
    polygon_intersection,
    polygon_intersection_area,
)
from .join import JoinConfig, SpatialJoinProcessor
from .stats import MultiStepStats


@dataclass
class OverlayPiece:
    """One intersection region of the overlay result layer."""

    oid_a: int
    oid_b: int
    regions: List[Polygon]

    @property
    def area(self) -> float:
        return sum(abs(r.area()) for r in self.regions)


@dataclass
class OverlayResult:
    """The overlay layer plus join statistics and failure accounting."""

    pieces: List[OverlayPiece]
    stats: MultiStepStats
    #: pairs whose region computation failed on degeneracies (rare; the
    #: pair still intersects — callers may fall back to sampling).
    failed_pairs: List[Tuple[int, int]] = field(default_factory=list)

    def total_area(self) -> float:
        return sum(piece.area for piece in self.pieces)

    def __len__(self) -> int:
        return len(self.pieces)


class MapOverlay:
    """Intersection overlay of two polygon layers.

    >>> overlay = MapOverlay()
    >>> result = overlay.intersection(layer_a, layer_b)  # doctest: +SKIP
    """

    def __init__(self, config: Optional[JoinConfig] = None):
        self.processor = SpatialJoinProcessor(config)

    def intersection(
        self, layer_a: SpatialRelation, layer_b: SpatialRelation
    ) -> OverlayResult:
        """Compute the intersection layer of two polygon layers."""
        join = self.processor.join(layer_a, layer_b)
        pieces: List[OverlayPiece] = []
        failed: List[Tuple[int, int]] = []
        for obj_a, obj_b in join.pairs:
            piece = self._clip_pair(obj_a, obj_b)
            if piece is None:
                failed.append((obj_a.oid, obj_b.oid))
            elif piece.regions:
                pieces.append(piece)
        return OverlayResult(pieces=pieces, stats=join.stats, failed_pairs=failed)

    def intersection_areas(
        self, layer_a: SpatialRelation, layer_b: SpatialRelation
    ) -> List[Tuple[int, int, float]]:
        """Per-pair intersection areas (holes respected), join-driven."""
        join = self.processor.join(layer_a, layer_b)
        out: List[Tuple[int, int, float]] = []
        for obj_a, obj_b in join.pairs:
            try:
                area = polygon_intersection_area(obj_a.polygon, obj_b.polygon)
            except ClippingError:
                continue
            if area > 0:
                out.append((obj_a.oid, obj_b.oid, area))
        return out

    @staticmethod
    def _clip_pair(
        obj_a: SpatialObject, obj_b: SpatialObject
    ) -> Optional[OverlayPiece]:
        try:
            regions = polygon_intersection(obj_a.polygon, obj_b.polygon)
        except ClippingError:
            return None
        return OverlayPiece(oid_a=obj_a.oid, oid_b=obj_b.oid, regions=regions)
