"""Kernel benchmark: numpy oracle vs compiled (numba) loop kernels.

Measures pairs/second for every bulk filter/refine kernel of the
compiled tier (:mod:`repro.geometry.kernels`) on workloads shaped like
the real pipeline: candidate pairs of a canonical series, their edge
columns, their MBR rows.  Every backend is warmed first (so numba's
JIT compilation is excluded, exactly as in pooled execution after the
pre-warm initializer) and every backend's results are asserted
identical to the numpy oracle before timing is trusted.

The table lands in ``benchmarks/reports/kernels.txt``.  Acceptance
(ISSUE 8): with numba available, at least two refine kernels run >= 3x
the numpy oracle's pairs/second at quick scale.  Without numba the
``python`` loop backend is measured instead — the same loop bodies,
uncompiled — which documents the compilation headroom rather than a
speedup (no assertion in that case).
"""

from __future__ import annotations

import time

import numpy as np

from repro.geometry.fastops import EdgeArrays
from repro.geometry.kernels import NUMBA_AVAILABLE, get_kernels, warm_up
from repro.index import nested_loops_mbr_join

#: measured alternative to the numpy oracle.
ALT_BACKEND = "numba" if NUMBA_AVAILABLE else "python"

#: the ISSUE-8 acceptance bar: >= MIN_SPEEDUP on >= MIN_KERNELS kernels.
MIN_SPEEDUP = 3.0
MIN_KERNELS = 2


def _candidate_pairs(series):
    return list(
        nested_loops_mbr_join(
            series.relation_a.mbr_items(), series.relation_b.mbr_items()
        )
    )


def _build_workloads(series):
    """(kernel, pairs, run(kernel_set) -> comparable result) triples."""
    pairs = _candidate_pairs(series)
    assert pairs, "series produced no MBR candidates"
    edge_cache = {}

    def cols(obj):
        key = id(obj)
        if key not in edge_cache:
            edge_cache[key] = EdgeArrays(obj.polygon)
        return edge_cache[key]

    # segments_intersect_bulk: one row per (edge of a, edge of b) for a
    # slice of candidate pairs, flattened into big matched columns.
    seg_rows = [[], [], [], []]
    for obj_a, obj_b in pairs[:64]:
        ea, eb = cols(obj_a), cols(obj_b)
        na, nb = len(ea.x1), len(eb.x1)
        ia = np.repeat(np.arange(na), nb)
        ib = np.tile(np.arange(nb), na)
        seg_rows[0].append(np.column_stack([ea.x1[ia], ea.y1[ia]]))
        seg_rows[1].append(np.column_stack([ea.x2[ia], ea.y2[ia]]))
        seg_rows[2].append(np.column_stack([eb.x1[ib], eb.y1[ib]]))
        seg_rows[3].append(np.column_stack([eb.x2[ib], eb.y2[ib]]))
    p1, p2, q1, q2 = (np.concatenate(part) for part in seg_rows)

    # rects_intersect_bulk: candidate MBR rows, tiled up.
    def rect_rows(objs):
        return np.array(
            [(o.mbr.xmin, o.mbr.ymin, o.mbr.xmax, o.mbr.ymax) for o in objs]
        )

    rect_a = np.tile(rect_rows([a for a, _ in pairs]), (16, 1))
    rect_b = np.tile(rect_rows([b for _, b in pairs]), (16, 1))

    # points_in_polygons_bulk: first vertex of a probed against b's ring.
    px, py, qidx_parts, pp_cols, mbr_rows = [], [], [], [[], [], [], []], []
    for q, (obj_a, obj_b) in enumerate(pairs):
        eb = cols(obj_b)
        px.append(obj_a.polygon.shell[0][0])
        py.append(obj_a.polygon.shell[0][1])
        qidx_parts.append(np.full(len(eb.x1), q, dtype=np.intp))
        for part, name in zip(pp_cols, ("x1", "y1", "x2", "y2")):
            part.append(getattr(eb, name))
        mbr_rows.append(
            (obj_b.mbr.xmin, obj_b.mbr.ymin, obj_b.mbr.xmax, obj_b.mbr.ymax)
        )
    pp_args = (
        np.array(px), np.array(py), np.concatenate(qidx_parts),
        *(np.concatenate(part) for part in pp_cols), np.array(mbr_rows),
    )

    # edge_matrix / min_edge_distance / rect mask: per-pair calls over a
    # candidate slice (the pipeline's real call shape).
    pair_cols = [(cols(a), cols(b)) for a, b in pairs[:128]]
    matrix_pairs = sum(len(ea.x1) * len(eb.x1) for ea, eb in pair_cols)
    clip_rows = [
        (
            max(a.mbr.xmin, b.mbr.xmin), max(a.mbr.ymin, b.mbr.ymin),
            min(a.mbr.xmax, b.mbr.xmax), min(a.mbr.ymax, b.mbr.ymax),
        )
        for a, b in pairs[:128]
    ]

    def run_edge_matrix(kernels):
        return [
            bool(
                kernels.edge_matrix_intersect_any(
                    ea.x1, ea.y1, ea.x2, ea.y2, eb.x1, eb.y1, eb.x2, eb.y2
                )
            )
            for ea, eb in pair_cols
        ]

    def run_min_distance(kernels):
        return [
            kernels.min_edge_distance_bulk(
                ea.x1, ea.y1, ea.x2, ea.y2, eb.x1, eb.y1, eb.x2, eb.y2
            )
            for ea, eb in pair_cols
        ]

    def run_rect_mask(kernels):
        return [
            np.asarray(
                kernels.edges_overlapping_rect_mask(
                    ea.x1, ea.y1, ea.x2, ea.y2, *clip
                )
            ).tolist()
            for (ea, _), clip in zip(pair_cols, clip_rows)
        ]

    return [
        (
            "segments_intersect_bulk", len(p1),
            lambda kernels: np.asarray(
                kernels.segments_intersect_bulk(p1, p2, q1, q2)
            ).tolist(),
        ),
        (
            "rects_intersect_bulk", len(rect_a),
            lambda kernels: np.asarray(
                kernels.rects_intersect_bulk(rect_a, rect_b)
            ).tolist(),
        ),
        (
            "points_in_polygons_bulk", len(pp_args[2]),
            lambda kernels: np.asarray(
                kernels.points_in_polygons_bulk(*pp_args)
            ).tolist(),
        ),
        ("edge_matrix_intersect_any", matrix_pairs, run_edge_matrix),
        ("edges_overlapping_rect_mask", matrix_pairs, run_rect_mask),
        ("min_edge_distance_bulk", matrix_pairs, run_min_distance),
    ]


def _best_seconds(fn, reps=3):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_kernel_backends_pairs_per_second(series_cache, report):
    series = series_cache("Europe A")
    workloads = _build_workloads(series)
    for backend in ("numpy", ALT_BACKEND):
        warm_up(backend)  # JIT outside the timed region, as in the pools

    lines = [
        f" numpy oracle vs {ALT_BACKEND}"
        + ("" if NUMBA_AVAILABLE else " (uncompiled loop bodies — numba not"
           " installed; documents compilation headroom, no speedup bar)"),
        f" {'kernel':<28} {'pairs':>9} {'numpy':>12} "
        f"{ALT_BACKEND:>12} {'speedup':>8}",
    ]
    speedups = {}
    rows = {}
    for kernel_name, n_pairs, run in workloads:
        oracle_set = get_kernels("numpy")
        alt_set = get_kernels(ALT_BACKEND)
        oracle_result = run(oracle_set)
        assert run(alt_set) == oracle_result, (
            f"{ALT_BACKEND} diverged from numpy on {kernel_name}"
        )
        numpy_seconds = _best_seconds(lambda: run(oracle_set))
        alt_seconds = _best_seconds(lambda: run(alt_set))
        numpy_rate = n_pairs / max(numpy_seconds, 1e-9)
        alt_rate = n_pairs / max(alt_seconds, 1e-9)
        speedups[kernel_name] = alt_rate / max(numpy_rate, 1e-9)
        rows[kernel_name] = {
            "pairs": n_pairs,
            "numpy_pairs_per_sec": numpy_rate,
            "alt_pairs_per_sec": alt_rate,
            "speedup": speedups[kernel_name],
        }
        lines.append(
            f" {kernel_name:<28} {n_pairs:>9} {numpy_rate:>10.2e}/s "
            f"{alt_rate:>10.2e}/s {speedups[kernel_name]:>7.2f}x"
        )
    lines.append(" (pairs/second, best of 3 runs, backends pre-warmed)")
    report.table(
        "Kernels",
        f"bulk kernel throughput: numpy vs {ALT_BACKEND}",
        lines,
    )
    report.json_artifact(
        "kernels",
        {
            "alt_backend": ALT_BACKEND,
            "numba_available": NUMBA_AVAILABLE,
            "kernels": rows,
        },
    )

    if NUMBA_AVAILABLE:
        fast = [name for name, s in speedups.items() if s >= MIN_SPEEDUP]
        assert len(fast) >= MIN_KERNELS, (
            f"expected >= {MIN_KERNELS} kernels at >= {MIN_SPEEDUP}x "
            f"with numba, got {sorted(speedups.items())}"
        )
