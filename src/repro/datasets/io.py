"""Relation persistence in WKT (Well-Known Text).

Spatial relations serialise to plain-text files with one ``POLYGON``
per line, the interchange format every spatial DBS of the paper's era
(and today's PostGIS) understands.  Only the geometry subset the
library models is supported: ``POLYGON`` with optional hole rings.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, List, Union

from ..geometry import Coord, Polygon
from .relations import SpatialRelation

_NUMBER = r"[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?"
_RING_RE = re.compile(r"\(([^()]*)\)")


def polygon_to_wkt(polygon: Polygon, precision: int = 17) -> str:
    """Serialise one polygon to a ``POLYGON (...)`` string.

    The default ``precision=17`` emits ``repr``-faithful coordinates
    (Python's shortest round-trip float representation), so parsing the
    text back yields bit-identical float64 values.  That keeps every
    content-addressed consumer stable across a disk round-trip — in
    particular :attr:`repro.datasets.columnar.ColumnarRelation.fingerprint`,
    which keys the session segment cache and the service result cache;
    a truncating precision would silently give the reloaded relation a
    new fingerprint and defeat both caches.  Pass a smaller precision
    explicitly to trade fidelity for compactness.
    """
    if precision >= 17:
        # repr() is the shortest string that round-trips the exact
        # float64; float() first in case a numpy scalar sneaks in.
        def fmt(value: float) -> str:
            return repr(float(value))
    else:
        def fmt(value: float) -> str:
            return f"{value:.{precision}g}"

    def ring_text(ring) -> str:
        pts = list(ring) + [ring[0]]  # WKT closes rings explicitly
        inner = ", ".join(f"{fmt(x)} {fmt(y)}" for x, y in pts)
        return f"({inner})"

    rings = [ring_text(polygon.shell)]
    rings.extend(ring_text(hole) for hole in polygon.holes)
    return f"POLYGON ({', '.join(rings)})"


def polygon_from_wkt(text: str) -> Polygon:
    """Parse a ``POLYGON (...)`` string (holes supported)."""
    stripped = text.strip()
    if not stripped.upper().startswith("POLYGON"):
        raise ValueError(f"not a POLYGON WKT: {stripped[:40]!r}")
    rings: List[List[Coord]] = []
    for ring_text in _RING_RE.findall(stripped):
        coords: List[Coord] = []
        for pair in ring_text.split(","):
            parts = pair.split()
            if len(parts) != 2:
                raise ValueError(f"malformed coordinate pair: {pair!r}")
            coords.append((float(parts[0]), float(parts[1])))
        rings.append(coords)
    if not rings:
        raise ValueError("POLYGON with no rings")
    return Polygon(rings[0], holes=rings[1:])


def save_relation(
    relation: SpatialRelation, path: Union[str, Path], precision: int = 17
) -> None:
    """Write a relation as one WKT polygon per line.

    The file starts with a ``# relation: <name>`` comment so round-trips
    preserve the relation name.  With the default precision the
    round-trip is exact: ``load_relation(path)`` rebuilds bit-identical
    coordinates, the same ``ColumnarRelation.fingerprint``, and
    therefore full segment/result-cache hits (see :func:`polygon_to_wkt`).
    """
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"# relation: {relation.name}\n")
        for obj in relation:
            fh.write(polygon_to_wkt(obj.polygon, precision) + "\n")


def load_relation(path: Union[str, Path]) -> SpatialRelation:
    """Read a relation written by :func:`save_relation`."""
    path = Path(path)
    name = path.stem
    polygons: List[Polygon] = []
    with path.open() as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                match = re.match(r"#\s*relation:\s*(.+)", line)
                if match:
                    name = match.group(1).strip()
                continue
            try:
                polygons.append(polygon_from_wkt(line))
            except ValueError as exc:
                raise ValueError(f"{path}:{line_no}: {exc}") from exc
    return SpatialRelation(name, polygons)


def relations_equal(
    rel_a: SpatialRelation, rel_b: SpatialRelation, tol: float = 1e-9
) -> bool:
    """Structural equality of two relations (used by round-trip tests).

    Compares every ring — shells *and* hole rings — coordinate by
    coordinate.  (An earlier version only counted holes and compared
    shell points, so two relations with identical shells but different
    hole geometry compared equal.)
    """
    if len(rel_a) != len(rel_b):
        return False
    for obj_a, obj_b in zip(rel_a, rel_b):
        pa, pb = obj_a.polygon, obj_b.polygon
        if len(pa.holes) != len(pb.holes):
            return False
        rings_a = (pa.shell, *pa.holes)
        rings_b = (pb.shell, *pb.holes)
        for ring_a, ring_b in zip(rings_a, rings_b):
            if len(ring_a) != len(ring_b):
                return False
            if any(
                abs(x1 - x2) > tol or abs(y1 - y2) > tol
                for (x1, y1), (x2, y2) in zip(ring_a, ring_b)
            ):
                return False
    return True
