"""Hypothesis fuzz: loop-form kernel backends ≡ the numpy oracle.

The compiled kernel tier (:mod:`repro.geometry.kernels`) promises that
every backend decides *identically* — same booleans, same floats, same
operation counts.  The ``python`` backend runs the exact loop bodies
numba compiles, so fuzzing ``python`` vs ``numpy`` proves the compiled
tier's logic without numba installed; with numba present the same
comparisons run against ``numba`` too (parametrised below).

Coordinates are drawn from a coarse ``1/8`` grid (mixed with arbitrary
floats) so exactly-collinear, exactly-touching, and exactly-overlapping
configurations occur constantly rather than almost never; the polygon
strategy includes rings with holes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact.costmodel import OperationCounter
from repro.geometry import Polygon
from repro.geometry.fastops import EdgeArrays
from repro.geometry.kernels import NUMBA_AVAILABLE, get_kernels

#: the backends whose kernels must match the numpy oracle bit-for-bit.
ALT_BACKENDS = ["python"] + (["numba"] if NUMBA_AVAILABLE else [])

snapped = st.integers(min_value=-8, max_value=16).map(lambda n: n / 8.0)
coord = st.one_of(
    snapped,
    st.floats(min_value=-1.0, max_value=2.0, allow_nan=False,
              allow_infinity=False),
)
point = st.tuples(coord, coord)
segment = st.tuples(point, point)


def _seg_columns(segments):
    rows = np.asarray(
        [(a[0], a[1], b[0], b[1]) for a, b in segments], dtype=float
    ).reshape(-1, 4)
    return rows[:, 0], rows[:, 1], rows[:, 2], rows[:, 3]


def _ccw_square(cx, cy, half):
    return [
        (cx - half, cy - half),
        (cx + half, cy - half),
        (cx + half, cy + half),
        (cx - half, cy + half),
    ]


def _star(seed, n):
    import math
    import random

    rng = random.Random(seed)
    pts = []
    for i in range(n):
        angle = 2 * math.pi * i / n
        r = 0.1 + 0.4 * rng.random()
        pts.append((0.5 + r * math.cos(angle), 0.5 + r * math.sin(angle)))
    return Polygon(pts)


polygon_strategy = st.one_of(
    st.tuples(snapped, snapped, st.sampled_from([0.125, 0.25, 0.5])).map(
        lambda t: Polygon(_ccw_square(t[0], t[1], t[2]))
    ),
    st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=3, max_value=12),
    ).map(lambda t: _star(t[0], t[1])),
    # Rings with holes: even-odd parity must agree across backends.
    st.tuples(snapped, snapped).map(
        lambda t: Polygon(
            _ccw_square(t[0], t[1], 0.5),
            [_ccw_square(t[0], t[1], 0.25)],
        )
    ),
)


@pytest.fixture(params=ALT_BACKENDS)
def backend_pair(request):
    return get_kernels("numpy"), get_kernels(request.param)


# -- segments_intersect_bulk ------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(segment, segment), min_size=1, max_size=24))
def test_segments_intersect_rows_match(cases):
    p1 = np.array([a for (a, _), _ in cases], dtype=float)
    p2 = np.array([b for (_, b), _ in cases], dtype=float)
    q1 = np.array([a for _, (a, _) in cases], dtype=float)
    q2 = np.array([b for _, (_, b) in cases], dtype=float)
    oracle = get_kernels("numpy").segments_intersect_bulk(p1, p2, q1, q2)
    for name in ALT_BACKENDS:
        got = get_kernels(name).segments_intersect_bulk(p1, p2, q1, q2)
        assert np.array_equal(np.asarray(got), np.asarray(oracle)), name


def test_segments_intersect_degenerate_rows(backend_pair):
    """Collinear / touching / point-degenerate segment rows."""
    numpy_set, alt = backend_pair
    cases = [
        (((0, 0), (1, 0)), ((0.5, 0), (2, 0))),     # collinear overlap
        (((0, 0), (1, 0)), ((1.5, 0), (2, 0))),     # collinear disjoint
        (((0, 0), (1, 0)), ((1, 0), (1, 1))),       # endpoint-endpoint
        (((0, 0), (2, 0)), ((1, 0), (1, 1))),       # T junction
        (((0, 0), (1, 1)), ((0, 1), (1, 0))),       # proper crossing
        (((0.5, 0), (0.5, 0)), ((0, 0), (1, 0))),   # point on segment
        (((0.5, 0.5), (0.5, 0.5)), ((0, 0), (1, 0))),  # point off segment
        (((0, 0), (1, 1)), ((0, 0), (1, 1))),       # identical
        (((0, 0), (1, 0)), ((1 + 1e-13, 0), (2, 0))),  # epsilon near-miss
    ]
    p1 = np.array([a for (a, _), _ in cases], dtype=float)
    p2 = np.array([b for (_, b), _ in cases], dtype=float)
    q1 = np.array([a for _, (a, _) in cases], dtype=float)
    q2 = np.array([b for _, (_, b) in cases], dtype=float)
    assert np.array_equal(
        np.asarray(alt.segments_intersect_bulk(p1, p2, q1, q2)),
        np.asarray(numpy_set.segments_intersect_bulk(p1, p2, q1, q2)),
    )


# -- points_in_polygons_bulk ------------------------------------------------


def _point_query_columns(polys_and_points):
    px = np.array([p[0] for _, p in polys_and_points])
    py = np.array([p[1] for _, p in polys_and_points])
    parts = {name: [] for name in ("x1", "y1", "x2", "y2")}
    qidx_parts = []
    mbr_rows = []
    for q, (poly, _) in enumerate(polys_and_points):
        edges = EdgeArrays(poly)
        for name in parts:
            parts[name].append(getattr(edges, name))
        qidx_parts.append(np.full(len(edges), q, dtype=np.intp))
        rect = poly.mbr()
        mbr_rows.append((rect.xmin, rect.ymin, rect.xmax, rect.ymax))
    return (
        px, py,
        np.concatenate(qidx_parts),
        *(np.concatenate(parts[name]) for name in ("x1", "y1", "x2", "y2")),
        np.array(mbr_rows),
    )


@settings(max_examples=150, deadline=None)
@given(polygon_strategy, st.lists(point, min_size=1, max_size=6))
def test_points_in_polygons_match(poly, extra):
    # Boundary-heavy probes: vertices and edge midpoints plus fuzz points.
    pts = []
    for ring in poly.rings():
        for i in range(min(len(ring), 4)):
            a, b = ring[i], ring[(i + 1) % len(ring)]
            pts.append(a)
            pts.append(((a[0] + b[0]) / 2, (a[1] + b[1]) / 2))
    pts.extend(extra)
    columns = _point_query_columns([(poly, p) for p in pts])
    oracle = get_kernels("numpy").points_in_polygons_bulk(*columns)
    for name in ALT_BACKENDS:
        got = get_kernels(name).points_in_polygons_bulk(*columns)
        assert np.array_equal(np.asarray(got), np.asarray(oracle)), name
        # The mbrs=None variant must agree with itself across backends
        # (it skips the MBR mask, so it can only differ from the masked
        # call where the mask pruned an exact boundary hit).
        got_nomask = get_kernels(name).points_in_polygons_bulk(
            *columns[:-1], None
        )
        oracle_nomask = get_kernels("numpy").points_in_polygons_bulk(
            *columns[:-1], None
        )
        assert np.array_equal(
            np.asarray(got_nomask), np.asarray(oracle_nomask)
        ), name


# -- edge_matrix_intersect_any / edges_overlapping_rect_mask ----------------


@settings(max_examples=150, deadline=None)
@given(polygon_strategy, polygon_strategy, snapped, snapped)
def test_edge_matrix_and_rect_mask_match(poly_a, poly_b, dx, dy):
    poly_b = poly_b.translated(dx / 4.0, dy / 4.0)
    ea, eb = EdgeArrays(poly_a), EdgeArrays(poly_b)
    oracle_any = get_kernels("numpy").edge_matrix_intersect_any(
        ea.x1, ea.y1, ea.x2, ea.y2, eb.x1, eb.y1, eb.x2, eb.y2
    )
    ra, rb = poly_a.mbr(), poly_b.mbr()
    clip = (
        max(ra.xmin, rb.xmin), max(ra.ymin, rb.ymin),
        min(ra.xmax, rb.xmax), min(ra.ymax, rb.ymax),
    )
    oracle_mask = get_kernels("numpy").edges_overlapping_rect_mask(
        ea.x1, ea.y1, ea.x2, ea.y2, *clip
    )
    for name in ALT_BACKENDS:
        kernels = get_kernels(name)
        assert bool(kernels.edge_matrix_intersect_any(
            ea.x1, ea.y1, ea.x2, ea.y2, eb.x1, eb.y1, eb.x2, eb.y2
        )) == bool(oracle_any), name
        assert np.array_equal(
            np.asarray(kernels.edges_overlapping_rect_mask(
                ea.x1, ea.y1, ea.x2, ea.y2, *clip
            )),
            np.asarray(oracle_mask),
        ), name


# -- rects_intersect_bulk ---------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(point, point, point, point),
                min_size=1, max_size=24))
def test_rects_intersect_rows_match(rows):
    def rect(p, q):
        return (min(p[0], q[0]), min(p[1], q[1]),
                max(p[0], q[0]), max(p[1], q[1]))

    a = np.array([rect(p, q) for p, q, _, _ in rows], dtype=float)
    b = np.array([rect(p, q) for _, _, p, q in rows], dtype=float)
    oracle = get_kernels("numpy").rects_intersect_bulk(a, b)
    for name in ALT_BACKENDS:
        got = get_kernels(name).rects_intersect_bulk(a, b)
        assert np.array_equal(np.asarray(got), np.asarray(oracle)), name


# -- min_edge_distance_bulk -------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(st.lists(segment, min_size=1, max_size=12),
       st.lists(segment, min_size=1, max_size=12))
def test_min_edge_distance_bit_identical(segs_a, segs_b):
    """Distances are float results — equality must be exact, not approx."""
    a = _seg_columns(segs_a)
    b = _seg_columns(segs_b)
    oracle = get_kernels("numpy").min_edge_distance_bulk(*a, *b)
    for name in ALT_BACKENDS:
        got = get_kernels(name).min_edge_distance_bulk(*a, *b)
        assert got == oracle, (name, got, oracle)


# -- plane sweep ------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(polygon_strategy, polygon_strategy, snapped, snapped,
       st.booleans())
def test_planesweep_result_and_counts_match(poly_a, poly_b, dx, dy,
                                            restrict):
    poly_b = poly_b.translated(dx / 4.0, dy / 4.0)
    oracle_counter = OperationCounter()
    oracle = get_kernels("numpy").planesweep(
        poly_a, poly_b, oracle_counter, restrict
    )
    for name in ALT_BACKENDS:
        counter = OperationCounter()
        got = get_kernels(name).planesweep(poly_a, poly_b, counter, restrict)
        assert bool(got) == bool(oracle), name
        assert counter.counts == oracle_counter.counts, (
            name, dict(counter.counts), dict(oracle_counter.counts)
        )
