"""Tests for the partitioned (parallelism-oriented) join."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    JoinConfig,
    SpatialJoinProcessor,
    nested_loops_join,
    partitioned_join,
)


class TestPartitionedJoin:
    @pytest.mark.parametrize("grid", [(1, 1), (2, 2), (3, 2), (4, 4)])
    def test_matches_plain_join(self, tiny_series, tiny_oracle, grid):
        result = partitioned_join(
            tiny_series.relation_a,
            tiny_series.relation_b,
            grid=grid,
            config=JoinConfig(exact_method="vectorized"),
        )
        assert set(result.id_pairs()) == tiny_oracle
        # No duplicates: the reference-point rule assigns each pair once.
        assert len(result.id_pairs()) == len(set(result.id_pairs()))

    def test_invalid_grid_rejected(self, tiny_series):
        with pytest.raises(ValueError):
            partitioned_join(
                tiny_series.relation_a, tiny_series.relation_b, grid=(0, 2)
            )

    def test_partition_stats_cover_grid(self, tiny_series):
        result = partitioned_join(
            tiny_series.relation_a,
            tiny_series.relation_b,
            grid=(3, 3),
            config=JoinConfig(exact_method="vectorized"),
        )
        assert len(result.partitions) == 9
        assert {p.tile for p in result.partitions} == {
            (i, j) for i in range(3) for j in range(3)
        }

    def test_speedup_bound_reasonable(self, tiny_series):
        result = partitioned_join(
            tiny_series.relation_a,
            tiny_series.relation_b,
            grid=(2, 2),
            config=JoinConfig(exact_method="vectorized"),
        )
        bound = result.parallel_speedup_bound()
        # 4 tiles: bound in (1, 4]; uniform-ish data should parallelise.
        assert 1.0 <= bound <= 4.0 + 1e-9
        assert result.total_work >= result.max_tile_work

    def test_replication_increases_candidate_work(self, tiny_series):
        plain = SpatialJoinProcessor(
            JoinConfig(exact_method="vectorized")
        ).join(tiny_series.relation_a, tiny_series.relation_b)
        part = partitioned_join(
            tiny_series.relation_a,
            tiny_series.relation_b,
            grid=(3, 3),
            config=JoinConfig(exact_method="vectorized"),
        )
        # Border objects are replicated, so the summed candidate count is
        # at least the plain join's.
        assert part.stats.candidate_pairs >= plain.stats.candidate_pairs

    def test_finer_grid_smaller_max_tile(self, tiny_series):
        coarse = partitioned_join(
            tiny_series.relation_a,
            tiny_series.relation_b,
            grid=(1, 1),
            config=JoinConfig(exact_method="vectorized"),
        )
        fine = partitioned_join(
            tiny_series.relation_a,
            tiny_series.relation_b,
            grid=(4, 4),
            config=JoinConfig(exact_method="vectorized"),
        )
        assert fine.max_tile_work < coarse.max_tile_work
