"""Multi-step window and point queries ([KBS 93], [BHKS 93], paper §2.4).

The paper's join processor generalises the authors' earlier multi-step
*query* processor: SAM lookup on MBRs → geometric filter on stored
approximations → exact geometry.  This module provides that processor
for window and point queries over one relation, using the same
approximations, the same R*-tree and the same exact-geometry backends as
the join pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..approximations import Approximation
from ..datasets.relations import SpatialObject, SpatialRelation
from ..geometry import Coord, Polygon, Rect
from ..geometry.fastops import polygons_intersect_fast
from ..index import AccessCounter, LRUBuffer, RStarTree
from .filters import FilterConfig


@dataclass
class WindowQueryStats:
    """Counters of one multi-step window/point query."""

    candidates: int = 0
    filter_false_hits: int = 0
    filter_hits: int = 0
    exact_tests: int = 0
    exact_hits: int = 0
    node_visits: int = 0
    page_reads: int = 0

    @property
    def results(self) -> int:
        return self.filter_hits + self.exact_hits

    def identification_rate(self) -> float:
        if self.candidates == 0:
            return 0.0
        return (self.filter_false_hits + self.filter_hits) / self.candidates


class WindowQueryProcessor:
    """Multi-step point/window queries over one spatial relation.

    The R*-tree over the relation's MBRs is built once; approximations
    are the relation's cached per-object ones (stored next to the MBR in
    the paper's architecture).
    """

    def __init__(
        self,
        relation: SpatialRelation,
        filter_config: Optional[FilterConfig] = None,
        rtree_max_entries: int = 32,
        buffer_pages: Optional[int] = None,
    ):
        self.relation = relation
        self.filter_config = filter_config or FilterConfig()
        self.tree: RStarTree = relation.build_rtree(
            max_entries=rtree_max_entries
        )
        self._counter: Optional[AccessCounter] = None
        if buffer_pages is not None:
            self._counter = AccessCounter(buffer=LRUBuffer(buffer_pages))

    # -- queries --------------------------------------------------------------

    def window_query(
        self, window: Rect, stats: Optional[WindowQueryStats] = None
    ) -> List[SpatialObject]:
        """All objects whose exact geometry intersects ``window``."""
        stats = stats if stats is not None else WindowQueryStats()
        if self._counter is not None:
            self._counter.reset()
        candidates = self.tree.window_query(window, self._counter)
        if self._counter is not None:
            stats.node_visits = self._counter.node_visits
            stats.page_reads = self._counter.page_reads
        results: List[SpatialObject] = []
        window_poly = Polygon(window.corners())
        for obj in candidates:
            stats.candidates += 1
            outcome = self._filter_window(obj, window)
            if outcome is False:
                stats.filter_false_hits += 1
                continue
            if outcome is True:
                stats.filter_hits += 1
                results.append(obj)
                continue
            stats.exact_tests += 1
            if polygons_intersect_fast(obj.polygon, window_poly):
                stats.exact_hits += 1
                results.append(obj)
        return results

    def point_query(
        self, point: Coord, stats: Optional[WindowQueryStats] = None
    ) -> List[SpatialObject]:
        """All objects whose exact geometry contains ``point``."""
        stats = stats if stats is not None else WindowQueryStats()
        if self._counter is not None:
            self._counter.reset()
        candidates = self.tree.point_query(point, self._counter)
        if self._counter is not None:
            stats.node_visits = self._counter.node_visits
            stats.page_reads = self._counter.page_reads
        results: List[SpatialObject] = []
        for obj in candidates:
            stats.candidates += 1
            outcome = self._filter_point(obj, point)
            if outcome is False:
                stats.filter_false_hits += 1
                continue
            if outcome is True:
                stats.filter_hits += 1
                results.append(obj)
                continue
            stats.exact_tests += 1
            if obj.polygon.contains_point(point):
                stats.exact_hits += 1
                results.append(obj)
        return results

    # -- filter steps ---------------------------------------------------------

    def _filter_window(self, obj: SpatialObject, window: Rect):
        """Tri-state: False = false hit, True = hit, None = candidate."""
        cfg = self.filter_config
        if cfg.conservative:
            approx = obj.approximation(cfg.conservative)
            if not _approx_intersects_rect(approx, window):
                return False
        if cfg.progressive:
            approx = obj.approximation(cfg.progressive)
            if _approx_intersects_rect(approx, window):
                return True
        return None

    def _filter_point(self, obj: SpatialObject, point: Coord):
        cfg = self.filter_config
        if cfg.conservative:
            if not obj.approximation(cfg.conservative).contains_point(point):
                return False
        if cfg.progressive:
            if obj.approximation(cfg.progressive).contains_point(point):
                return True
        return None


def _approx_intersects_rect(approx: Approximation, rect: Rect) -> bool:
    """Intersection of any approximation shape with a rectangle."""
    if not approx.mbr().intersects(rect):
        return False
    if approx.shape_kind == "convex":
        from ..geometry import convex_intersect

        return convex_intersect(approx.convex_vertices(), list(rect.corners()))
    if approx.shape_kind == "circle":
        return approx.circle().intersects_rect(rect)
    # Ellipse: map the rectangle into the ellipse's unit-disk frame.
    from ..approximations.base import _ellipse_convex_intersect

    return _ellipse_convex_intersect(approx.ellipse(), list(rect.corners()))
