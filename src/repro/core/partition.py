"""Partitioned spatial joins — the paper's §6 parallelism outlook.

The paper closes by naming CPU- and I/O-parallelism as future work.  This
module implements the standard spatial declustering that later became
PBSM-style partitioned joins: the data space is cut into a grid of
tiles, objects are replicated into every tile their MBR intersects, each
tile is joined independently (each tile's work could run on its own
processor/disk), and duplicates are avoided with the reference-point
rule — a candidate pair is reported only by the tile containing the
lower-left corner of the two MBRs' intersection rectangle.

Execution here is sequential; the per-tile work statistics quantify the
achievable parallel speedup (total work / slowest tile).  The grid
decomposition helpers (:func:`joint_space`, :func:`tile_rects`,
:func:`assign_to_tiles`, :func:`owning_tile`) are shared with the real
multi-process executor in :mod:`repro.core.parallel_exec`, which runs
the same tiles on a :class:`concurrent.futures.ProcessPoolExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..datasets.relations import SpatialObject, SpatialRelation
from ..geometry import Rect
from .join import JoinConfig, JoinResult, SpatialJoinProcessor
from .stats import MultiStepStats


@dataclass
class PartitionStats:
    """Work performed by one tile's local join."""

    tile: Tuple[int, int]
    objects_a: int = 0
    objects_b: int = 0
    candidate_pairs: int = 0
    output_pairs: int = 0

    @property
    def work(self) -> int:
        """Work proxy: candidate pairs examined by this tile."""
        return self.candidate_pairs


@dataclass
class PartitionedJoinResult:
    """Join result plus per-tile work breakdown."""

    pairs: List[Tuple[SpatialObject, SpatialObject]]
    partitions: List[PartitionStats]
    stats: MultiStepStats

    def __len__(self) -> int:
        return len(self.pairs)

    def id_pairs(self) -> List[Tuple[int, int]]:
        return [(a.oid, b.oid) for a, b in self.pairs]

    @property
    def total_work(self) -> int:
        return sum(p.work for p in self.partitions)

    @property
    def max_tile_work(self) -> int:
        return max((p.work for p in self.partitions), default=0)

    def parallel_speedup_bound(self) -> float:
        """Ideal speedup with one processor per tile (work balance)."""
        if self.max_tile_work == 0:
            return 1.0
        return self.total_work / self.max_tile_work


def partitioned_join(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    grid: Tuple[int, int] = (2, 2),
    config: Optional[JoinConfig] = None,
) -> PartitionedJoinResult:
    """Grid-partitioned multi-step join (results equal the plain join)."""
    config = config or JoinConfig()
    nx, ny = grid
    space, plan = plan_tile_buckets(relation_a, relation_b, grid)

    processor = SpatialJoinProcessor(config)
    all_pairs: List[Tuple[SpatialObject, SpatialObject]] = []
    partitions: List[PartitionStats] = []
    merged = MultiStepStats()
    for key, objs_a, objs_b in plan:
        pstats = PartitionStats(
            tile=key, objects_a=len(objs_a), objects_b=len(objs_b)
        )
        partitions.append(pstats)
        if not objs_a or not objs_b:
            continue
        sub_a = subrelation(relation_a.name, objs_a)
        sub_b = subrelation(relation_b.name, objs_b)
        result = processor.join(sub_a, sub_b)
        pstats.candidate_pairs = result.stats.candidate_pairs
        merged.merge(result.stats)
        for obj_a, obj_b in result.pairs:
            if owning_tile(obj_a.mbr, obj_b.mbr, space, nx, ny) == key:
                pstats.output_pairs += 1
                all_pairs.append((obj_a, obj_b))
    return PartitionedJoinResult(
        pairs=all_pairs, partitions=partitions, stats=merged
    )


def plan_tile_buckets(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    grid: Tuple[int, int],
) -> Tuple[
    Rect,
    List[Tuple[Tuple[int, int], List[SpatialObject], List[SpatialObject]]],
]:
    """The shared tile plan: ``(space, [(tile, objs_a, objs_b), ...])``.

    Single source of truth for the grid decomposition consumed by both
    the serial :func:`partitioned_join` and the multi-process executor
    (:mod:`repro.core.parallel_exec`) — one definition of tile order,
    replication, and which tiles exist, so the serial-vs-parallel
    byte-identity guarantee cannot drift.
    """
    nx, ny = grid
    if nx < 1 or ny < 1:
        raise ValueError(f"grid must be at least 1x1, got {grid}")
    space = joint_space(relation_a, relation_b)
    tiles = tile_rects(space, nx, ny)
    buckets_a = assign_to_tiles(relation_a, tiles)
    buckets_b = assign_to_tiles(relation_b, tiles)
    return space, [
        (key, buckets_a.get(key, []), buckets_b.get(key, []))
        for key in tiles
    ]


def joint_space(
    relation_a: SpatialRelation, relation_b: SpatialRelation
) -> Rect:
    """Bounding rectangle of both relations (the partitioned data space)."""
    rects = [obj.mbr for obj in relation_a] + [obj.mbr for obj in relation_b]
    if not rects:
        return Rect(0, 0, 1, 1)
    return Rect.union_all(rects)


def tile_rects(space: Rect, nx: int, ny: int) -> Dict[Tuple[int, int], Rect]:
    """The ``nx`` × ``ny`` grid tiles covering ``space``, keyed ``(i, j)``."""
    tiles = {}
    for i in range(nx):
        for j in range(ny):
            tiles[(i, j)] = Rect(
                space.xmin + space.width * i / nx,
                space.ymin + space.height * j / ny,
                space.xmin + space.width * (i + 1) / nx,
                space.ymin + space.height * (j + 1) / ny,
            )
    return tiles


def assign_to_tiles(
    relation: SpatialRelation, tiles: Dict[Tuple[int, int], Rect]
) -> Dict[Tuple[int, int], List[SpatialObject]]:
    """Replicate every object into each tile its MBR intersects."""
    buckets: Dict[Tuple[int, int], List[SpatialObject]] = {}
    for obj in relation:
        for key, tile in tiles.items():
            if obj.mbr.intersects(tile):
                buckets.setdefault(key, []).append(obj)
    return buckets


class _SubRelation(SpatialRelation):
    """A view over existing SpatialObjects (shares their caches)."""

    def __init__(self, name: str, objects: List[SpatialObject]):
        self.name = name
        self.objects = objects


def subrelation(name: str, objects: List[SpatialObject]) -> SpatialRelation:
    """A relation view over existing objects, keeping their oids intact."""
    return _SubRelation(name, objects)


def owning_tile(
    mbr_a: Rect, mbr_b: Rect, space: Rect, nx: int, ny: int
) -> Tuple[int, int]:
    """Duplicate avoidance: the tile owning the pair's reference point.

    The reference point is the lower-left corner of the intersection of
    the two MBRs; mapping it to a tile index assigns every qualifying
    pair to exactly one tile.
    """
    inter = mbr_a.intersection(mbr_b)
    if inter is None:
        return (-1, -1)
    ix = int((inter.xmin - space.xmin) / space.width * nx) if space.width else 0
    iy = int((inter.ymin - space.ymin) / space.height * ny) if space.height else 0
    return (min(nx - 1, max(0, ix)), min(ny - 1, max(0, iy)))
