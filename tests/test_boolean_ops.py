"""Union and difference of rings: area identities vs the intersection."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import convex_hull
from repro.geometry.clipping import (
    difference_rings,
    intersect_rings,
    union_rings,
)
from repro.geometry.predicates import polygon_signed_area

SQUARE = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]


def shifted(ring, dx, dy):
    return [(x + dx, y + dy) for x, y in ring]


def signed_total(rings):
    """Net area: CCW regions positive, CW holes negative."""
    return sum(polygon_signed_area(r) for r in rings)


def abs_area(ring):
    return abs(polygon_signed_area(ring))


class TestUnion:
    def test_disjoint_union_is_both(self):
        rings = union_rings(SQUARE, shifted(SQUARE, 5, 5))
        assert len(rings) == 2
        assert signed_total(rings) == pytest.approx(2.0)

    def test_contained_union_is_outer(self):
        small = [(0.25, 0.25), (0.75, 0.25), (0.75, 0.75), (0.25, 0.75)]
        assert signed_total(union_rings(SQUARE, small)) == pytest.approx(1.0)
        assert signed_total(union_rings(small, SQUARE)) == pytest.approx(1.0)

    def test_half_overlap_union(self):
        rings = union_rings(SQUARE, shifted(SQUARE, 0.5, 0.0))
        assert signed_total(rings) == pytest.approx(1.5, rel=1e-6)

    def test_union_inclusion_exclusion(self):
        """|A∪B| = |A| + |B| - |A∩B| on random convex pairs."""
        rng = random.Random(42)
        for _ in range(10):
            hull_a = convex_hull([(rng.random(), rng.random()) for _ in range(10)])
            hull_b = convex_hull(
                [(rng.random() * 0.8 + 0.2, rng.random() * 0.8) for _ in range(10)]
            )
            inter = sum(abs_area(r) for r in intersect_rings(hull_a, hull_b))
            union = signed_total(union_rings(hull_a, hull_b))
            expected = abs_area(hull_a) + abs_area(hull_b) - inter
            assert union == pytest.approx(expected, abs=1e-7)

    @settings(max_examples=30, deadline=None)
    @given(
        dx=st.floats(-1.5, 1.5, allow_nan=False),
        dy=st.floats(-1.5, 1.5, allow_nan=False),
    )
    def test_property_union_bounds(self, dx, dy):
        other = shifted(SQUARE, dx, dy)
        union = signed_total(union_rings(SQUARE, other))
        assert 1.0 - 1e-6 <= union <= 2.0 + 1e-6


class TestDifference:
    def test_disjoint_difference_is_subject(self):
        rings = difference_rings(SQUARE, shifted(SQUARE, 5, 5))
        assert signed_total(rings) == pytest.approx(1.0)

    def test_subject_inside_clip_is_empty(self):
        small = [(0.25, 0.25), (0.75, 0.25), (0.75, 0.75), (0.25, 0.75)]
        assert difference_rings(small, SQUARE) == []

    def test_annulus_case(self):
        """Clip strictly inside subject: outer CCW ring + CW hole ring."""
        small = [(0.25, 0.25), (0.75, 0.25), (0.75, 0.75), (0.25, 0.75)]
        rings = difference_rings(SQUARE, small)
        assert len(rings) == 2
        areas = sorted(polygon_signed_area(r) for r in rings)
        assert areas[0] == pytest.approx(-0.25)  # hole, CW
        assert areas[1] == pytest.approx(1.0)  # outer, CCW
        assert signed_total(rings) == pytest.approx(0.75)

    def test_half_overlap_difference(self):
        rings = difference_rings(SQUARE, shifted(SQUARE, 0.5, 0.0))
        assert signed_total(rings) == pytest.approx(0.5, rel=1e-6)

    def test_difference_identity(self):
        """|A\\B| = |A| - |A∩B| on random convex pairs."""
        rng = random.Random(7)
        for _ in range(10):
            hull_a = convex_hull([(rng.random(), rng.random()) for _ in range(9)])
            hull_b = convex_hull(
                [(rng.random() + 0.3, rng.random() + 0.1) for _ in range(9)]
            )
            inter = sum(abs_area(r) for r in intersect_rings(hull_a, hull_b))
            diff = signed_total(difference_rings(hull_a, hull_b))
            assert diff == pytest.approx(abs_area(hull_a) - inter, abs=1e-7)

    def test_difference_not_symmetric(self):
        big = [(0, 0), (2, 0), (2, 2), (0, 2)]
        off = shifted(SQUARE, 1.5, 0.5)
        d1 = signed_total(difference_rings(big, off))
        d2 = signed_total(difference_rings(off, big))
        assert d1 == pytest.approx(4.0 - 0.5, rel=1e-6)
        assert d2 == pytest.approx(1.0 - 0.5, rel=1e-6)


class TestThreeWayConsistency:
    @pytest.mark.parametrize("seed", range(5))
    def test_partition_identity(self, seed):
        """|A∩B| + |A\\B| + |B\\A| = |A∪B| for random convex pairs."""
        rng = random.Random(seed)
        hull_a = convex_hull([(rng.random(), rng.random()) for _ in range(12)])
        hull_b = convex_hull(
            [(rng.random() * 0.9 + 0.25, rng.random()) for _ in range(12)]
        )
        inter = sum(abs_area(r) for r in intersect_rings(hull_a, hull_b))
        d_ab = signed_total(difference_rings(hull_a, hull_b))
        d_ba = signed_total(difference_rings(hull_b, hull_a))
        union = signed_total(union_rings(hull_a, hull_b))
        assert inter + d_ab + d_ba == pytest.approx(union, abs=1e-6)
