"""Simulated CPU/I-O parallelism (§6 future work)."""

import pytest

from repro.core.join import nested_loops_join
from repro.core.parallel import (
    ParallelSimulation,
    ProcessorLoad,
    TileCost,
    schedule_lpt,
    simulate_parallel_join,
    tile_costs,
)
from repro.core.partition import PartitionStats
from repro.datasets.relations import europe


def make_costs(seconds):
    return [
        TileCost(tile=(i, 0), cpu_seconds=s, io_seconds=0.0)
        for i, s in enumerate(seconds)
    ]


class TestScheduling:
    def test_single_processor_runs_everything(self):
        sim = schedule_lpt(make_costs([3, 1, 2]), 1)
        assert sim.makespan_seconds == pytest.approx(6.0)
        assert sim.speedup == pytest.approx(1.0)

    def test_lpt_within_four_thirds_of_optimum(self):
        # the classic LPT worst-ish case: optimum 6 (3+3 | 2+2+2), LPT 7
        sim = schedule_lpt(make_costs([3, 3, 2, 2, 2]), 2)
        optimum = 6.0
        assert optimum <= sim.makespan_seconds <= optimum * 4 / 3
        assert sim.speedup == pytest.approx(12.0 / sim.makespan_seconds)

    def test_speedup_bounded_by_processors(self):
        costs = make_costs([1.0] * 16)
        for p in (1, 2, 4, 8):
            sim = schedule_lpt(costs, p)
            assert sim.speedup <= p + 1e-9
            assert sim.efficiency <= 1.0 + 1e-9

    def test_one_giant_tile_limits_speedup(self):
        sim = schedule_lpt(make_costs([10, 0.1, 0.1, 0.1]), 8)
        assert sim.speedup < 1.1

    def test_zero_processors_rejected(self):
        with pytest.raises(ValueError):
            schedule_lpt(make_costs([1]), 0)

    def test_empty_tile_list(self):
        sim = schedule_lpt([], 4)
        assert sim.makespan_seconds == 0.0
        assert sim.speedup == 1.0
        assert sim.imbalance == 1.0

    def test_imbalance_of_balanced_load(self):
        sim = schedule_lpt(make_costs([1, 1, 1, 1]), 2)
        assert sim.imbalance == pytest.approx(1.0)


class TestTileCosts:
    def test_costs_proportional_to_work(self):
        partitions = [
            PartitionStats(tile=(0, 0), objects_a=10, objects_b=10,
                           candidate_pairs=100),
            PartitionStats(tile=(1, 0), objects_a=5, objects_b=5,
                           candidate_pairs=25),
        ]
        costs = tile_costs(partitions)
        assert costs[0].cpu_seconds == pytest.approx(4 * costs[1].cpu_seconds)
        assert costs[0].io_seconds == pytest.approx(2 * costs[1].io_seconds)
        assert costs[0].total_seconds > costs[1].total_seconds

    def test_empty_tile_costs_nothing(self):
        costs = tile_costs([PartitionStats(tile=(0, 0))])
        assert costs[0].total_seconds == 0.0


class TestSimulatedJoin:
    def test_result_matches_plain_join(self):
        rel_a = europe(size=40)
        rel_b = europe(seed=5, size=40)
        report = simulate_parallel_join(rel_a, rel_b, grid=(3, 3))
        got = sorted(report.result.id_pairs())
        expected = sorted(nested_loops_join(rel_a, rel_b))
        assert got == expected

    def test_speedup_curve_monotone(self):
        rel_a = europe(size=60)
        rel_b = europe(seed=7, size=60)
        report = simulate_parallel_join(
            rel_a, rel_b, grid=(4, 4), processor_counts=(1, 2, 4, 8)
        )
        curve = report.speedup_curve()
        speedups = [s for _, s in curve]
        assert speedups == sorted(speedups)
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[-1] > 1.5  # 16 tiles on 8 processors must help

    def test_finer_grid_interacts_with_skew(self):
        rel_a = europe(size=60)
        rel_b = europe(seed=7, size=60)
        coarse = simulate_parallel_join(
            rel_a, rel_b, grid=(2, 2), processor_counts=(4,)
        )
        fine = simulate_parallel_join(
            rel_a, rel_b, grid=(6, 6), processor_counts=(4,)
        )
        # finer tiles give the scheduler more freedom: speedup must not drop
        assert fine.simulations[0][1].speedup >= coarse.simulations[0][1].speedup - 0.25

    @pytest.mark.parallel
    def test_measured_speedup_reported_next_to_model(self):
        rel_a = europe(size=40)
        rel_b = europe(seed=5, size=40)
        report = simulate_parallel_join(
            rel_a, rel_b, grid=(3, 3), processor_counts=(1, 2),
            measure=True,
        )
        assert [m.workers for m in report.measured] == [1, 2]
        assert report.measured[0].speedup == pytest.approx(1.0)
        for run in report.measured:
            assert run.wall_seconds > 0
        table = report.speedup_table()
        assert [row[0] for row in table] == [1, 2]
        for _, modeled, measured in table:
            assert modeled >= 1.0
            assert measured is not None

    def test_unmeasured_report_has_empty_measured_column(self):
        rel_a = europe(size=30)
        rel_b = europe(seed=9, size=30)
        report = simulate_parallel_join(rel_a, rel_b, grid=(2, 2),
                                        processor_counts=(1, 4))
        assert report.measured == []
        assert [row[2] for row in report.speedup_table()] == [None, None]

    def test_processor_loads_partition_tiles(self):
        rel_a = europe(size=30)
        rel_b = europe(seed=9, size=30)
        report = simulate_parallel_join(
            rel_a, rel_b, grid=(3, 3), processor_counts=(3,)
        )
        sim = report.simulations[0][1]
        assert isinstance(sim, ParallelSimulation)
        scheduled = sum(len(p.tiles) for p in sim.processors)
        assert scheduled == len(report.result.partitions)
        for load in sim.processors:
            assert isinstance(load, ProcessorLoad)
            assert load.busy_seconds >= 0
