"""Partitioned spatial joins — the paper's §6 parallelism outlook.

The paper closes by naming CPU- and I/O-parallelism as future work.  This
module implements the standard spatial declustering that later became
PBSM-style partitioned joins: the data space is cut into a grid of
tiles, objects are replicated into every tile their MBR intersects, each
tile is joined independently (each tile's work could run on its own
processor/disk), and duplicates are avoided with the reference-point
rule — a candidate pair is reported only by the tile containing the
lower-left corner of the two MBRs' intersection rectangle.

Execution here is sequential; the per-tile work statistics quantify the
achievable parallel speedup (total work / slowest tile).  The grid
decomposition is a vectorized index computation over the relations'
columnar MBR columns (:func:`assign_tile_indices` /
:func:`plan_tile_indices` — masks built from exactly the comparisons of
:meth:`Rect.intersects`, so membership cannot diverge from the scalar
reference-tile rule); object-list facades (:func:`assign_to_tiles`,
:func:`plan_tile_buckets`) remain for callers that want materialised
slices.  The helpers (:func:`joint_space`, :func:`tile_rects`,
:func:`owning_tile`) are shared with the real multi-process executor in
:mod:`repro.core.parallel_exec`, which runs the same tiles on a
:class:`concurrent.futures.ProcessPoolExecutor`.

**Tile formation is a pluggable strategy** (``JoinConfig(partitioner=...)``,
CLI ``join --partitioner``).  :class:`GridPartitioner` produces the
uniform grid decomposition described above.  :class:`TreePartitioner`
instead bulk-loads (or reuses, via
:meth:`repro.datasets.columnar.ColumnarRelation.partition_tree`)
R*-trees over both relations' MBR columns and runs the restricted
synchronized traversal of [BKS 93a] down to a work budget, emitting
**leaf-overlap tasks** — pairs of candidate row-index sets.  Because an
R*-tree stores every object in exactly one leaf, the emitted tasks
partition the candidate-pair space *disjointly*: no object replication,
no reference-tile de-duplication, and task extents follow the data's
clustering instead of a uniform grid (hot clusters split into many
small tasks, empty space produces none).  Tasks are declustered across
workers by ordering dispatch along a Hilbert or Z-order space-filling
curve (:mod:`repro.index.hilbert` / :mod:`repro.index.zorder`) over the
task regions.  Either strategy yields a :class:`PartitionPlan` in the
same index-array shape, so both run behind the executor's unchanged
``Scheduler``/``ColumnarTileTask`` wire format with byte-identical
results to the serial join.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import ClassVar, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.relations import SpatialObject, SpatialRelation
from ..geometry import Rect
from .join import PARTITIONERS, JoinConfig, JoinResult, SpatialJoinProcessor
from .stats import MultiStepStats


@dataclass
class PartitionStats:
    """Work performed by one tile's local join."""

    tile: Tuple[int, int]
    objects_a: int = 0
    objects_b: int = 0
    candidate_pairs: int = 0
    output_pairs: int = 0

    @property
    def work(self) -> int:
        """Work proxy: candidate pairs examined by this tile."""
        return self.candidate_pairs


@dataclass
class PartitionedJoinResult:
    """Join result plus per-tile work breakdown."""

    pairs: List[Tuple[SpatialObject, SpatialObject]]
    partitions: List[PartitionStats]
    stats: MultiStepStats

    def __len__(self) -> int:
        return len(self.pairs)

    def id_pairs(self) -> List[Tuple[int, int]]:
        return [(a.oid, b.oid) for a, b in self.pairs]

    @property
    def total_work(self) -> int:
        return sum(p.work for p in self.partitions)

    @property
    def max_tile_work(self) -> int:
        return max((p.work for p in self.partitions), default=0)

    def parallel_speedup_bound(self) -> float:
        """Ideal speedup with one processor per tile (work balance)."""
        if self.max_tile_work == 0:
            return 1.0
        return self.total_work / self.max_tile_work


def partitioned_join(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    grid: Tuple[int, int] = (2, 2),
    config: Optional[JoinConfig] = None,
) -> PartitionedJoinResult:
    """Grid-partitioned multi-step join (results equal the plain join)."""
    config = config or JoinConfig()
    nx, ny = grid
    space, plan = plan_tile_indices(relation_a, relation_b, grid)

    # Tile-local joins pack incrementally (see parallel_exec._finish_tile
    # for the rationale); the relation-level columns still drive the
    # grid decomposition above.
    processor = SpatialJoinProcessor(replace(config, columnar=False))
    all_pairs: List[Tuple[SpatialObject, SpatialObject]] = []
    partitions: List[PartitionStats] = []
    merged = MultiStepStats()
    for key, idx_a, idx_b in plan:
        pstats = PartitionStats(
            tile=key, objects_a=len(idx_a), objects_b=len(idx_b)
        )
        partitions.append(pstats)
        if idx_a.size == 0 or idx_b.size == 0:
            continue
        sub_a = subrelation_from_indices(relation_a, idx_a)
        sub_b = subrelation_from_indices(relation_b, idx_b)
        result = processor.join(sub_a, sub_b)
        pstats.candidate_pairs = result.stats.candidate_pairs
        merged.merge(result.stats)
        for obj_a, obj_b in result.pairs:
            if owning_tile(obj_a.mbr, obj_b.mbr, space, nx, ny) == key:
                pstats.output_pairs += 1
                all_pairs.append((obj_a, obj_b))
    return PartitionedJoinResult(
        pairs=all_pairs, partitions=partitions, stats=merged
    )


def plan_tile_buckets(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    grid: Tuple[int, int],
) -> Tuple[
    Rect,
    List[Tuple[Tuple[int, int], List[SpatialObject], List[SpatialObject]]],
]:
    """The shared tile plan: ``(space, [(tile, objs_a, objs_b), ...])``.

    Object-list facade over :func:`plan_tile_indices` — kept for callers
    that want materialised ``SpatialObject`` lists (e.g. the legacy
    pickled-slice wire format).
    """
    space, plan = plan_tile_indices(relation_a, relation_b, grid)
    objs_a = relation_a.objects
    objs_b = relation_b.objects
    return space, [
        (key, [objs_a[i] for i in idx_a], [objs_b[i] for i in idx_b])
        for key, idx_a, idx_b in plan
    ]


def plan_tile_indices(
    relation_a: SpatialRelation,
    relation_b: SpatialRelation,
    grid: Tuple[int, int],
) -> Tuple[
    Rect,
    List[Tuple[Tuple[int, int], np.ndarray, np.ndarray]],
]:
    """The shared tile plan as index arrays into the relations' columns.

    ``(space, [(tile, idx_a, idx_b), ...])`` where the index arrays
    select each tile's objects out of ``relation.objects`` (and out of
    every column of ``relation.columnar()``).  Single source of truth
    for the grid decomposition consumed by the serial
    :func:`partitioned_join` and both wire formats of the multi-process
    executor (:mod:`repro.core.parallel_exec`) — one definition of tile
    order, replication, and which tiles exist, so the serial-vs-parallel
    byte-identity guarantee cannot drift.
    """
    nx, ny = grid
    if nx < 1 or ny < 1:
        raise ValueError(f"grid must be at least 1x1, got {grid}")
    space = joint_space(relation_a, relation_b)
    tiles = tile_rects(space, nx, ny)
    indices_a = assign_tile_indices(relation_a.columnar().mbrs, tiles)
    indices_b = assign_tile_indices(relation_b.columnar().mbrs, tiles)
    return space, [
        (key, indices_a[key], indices_b[key]) for key in tiles
    ]


def joint_space(
    relation_a: SpatialRelation, relation_b: SpatialRelation
) -> Rect:
    """Bounding rectangle of both relations (the partitioned data space).

    Computed as column-wise min/max over the relations' MBR columns —
    the same floats ``Rect.union_all`` over the per-object MBRs yields.
    """
    columns = [
        rel.columnar().mbrs for rel in (relation_a, relation_b) if len(rel)
    ]
    if not columns:
        return Rect(0, 0, 1, 1)
    mbrs = np.concatenate(columns)
    return Rect(
        float(mbrs[:, 0].min()),
        float(mbrs[:, 1].min()),
        float(mbrs[:, 2].max()),
        float(mbrs[:, 3].max()),
    )


def tile_rects(space: Rect, nx: int, ny: int) -> Dict[Tuple[int, int], Rect]:
    """The ``nx`` × ``ny`` grid tiles covering ``space``, keyed ``(i, j)``."""
    tiles = {}
    for i in range(nx):
        for j in range(ny):
            tiles[(i, j)] = Rect(
                space.xmin + space.width * i / nx,
                space.ymin + space.height * j / ny,
                space.xmin + space.width * (i + 1) / nx,
                space.ymin + space.height * (j + 1) / ny,
            )
    return tiles


def assign_tile_indices(
    mbrs: np.ndarray,
    tiles: Dict[Tuple[int, int], Rect],
    expand: float = 0.0,
) -> Dict[Tuple[int, int], np.ndarray]:
    """Replication as index arrays: rows of ``mbrs`` per intersected tile.

    Vectorized over the ``(n, 4)`` MBR columns; each tile's mask uses
    exactly the comparisons of :meth:`Rect.intersects` (closed
    rectangles), so membership can never diverge from the scalar rule
    that :func:`owning_tile` relies on.  Index arrays are ascending,
    i.e. objects keep their relation order inside every tile.

    ``expand`` grows every MBR by that amount on each side before the
    intersection masks (the ε/2 expansion of distance-join task
    formation) — the same subtractions/additions :meth:`Rect.expand`
    performs, so the vectorized masks agree bit-for-bit with the scalar
    expanded-ownership rule the workers apply.
    """
    out: Dict[Tuple[int, int], np.ndarray] = {}
    if len(mbrs) == 0:
        empty = np.empty(0, dtype=np.intp)
        return {key: empty for key in tiles}
    xmin, ymin, xmax, ymax = mbrs.T
    if expand:
        xmin = xmin - expand
        ymin = ymin - expand
        xmax = xmax + expand
        ymax = ymax + expand
    for key, tile in tiles.items():
        mask = (
            (xmin <= tile.xmax)
            & (tile.xmin <= xmax)
            & (ymin <= tile.ymax)
            & (tile.ymin <= ymax)
        )
        out[key] = np.nonzero(mask)[0]
    return out


def assign_to_tiles(
    relation: SpatialRelation, tiles: Dict[Tuple[int, int], Rect]
) -> Dict[Tuple[int, int], List[SpatialObject]]:
    """Replicate every object into each tile its MBR intersects.

    Object-list facade over :func:`assign_tile_indices` (tiles that
    receive no objects are absent, as before).
    """
    index_map = assign_tile_indices(relation.columnar().mbrs, tiles)
    objects = relation.objects
    return {
        key: [objects[i] for i in idx]
        for key, idx in index_map.items()
        if idx.size
    }


class _SubRelation(SpatialRelation):
    """A view over existing SpatialObjects (shares their caches)."""

    def __init__(self, name: str, objects: List[SpatialObject]):
        self.name = name
        self.objects = objects


def subrelation(name: str, objects: List[SpatialObject]) -> SpatialRelation:
    """A relation view over existing objects, keeping their oids intact."""
    return _SubRelation(name, objects)


def subrelation_from_indices(
    relation: SpatialRelation, indices: Sequence[int]
) -> SpatialRelation:
    """A relation view selected by index array (rows of the columns)."""
    objects = relation.objects
    return _SubRelation(relation.name, [objects[i] for i in indices])


def owning_tile(
    mbr_a: Rect, mbr_b: Rect, space: Rect, nx: int, ny: int
) -> Tuple[int, int]:
    """Duplicate avoidance: the tile owning the pair's reference point.

    The reference point is the lower-left corner of the intersection of
    the two MBRs; mapping it to a tile index assigns every qualifying
    pair to exactly one tile.
    """
    inter = mbr_a.intersection(mbr_b)
    if inter is None:
        return (-1, -1)
    ix = int((inter.xmin - space.xmin) / space.width * nx) if space.width else 0
    iy = int((inter.ymin - space.ymin) / space.height * ny) if space.height else 0
    return (min(nx - 1, max(0, ix)), min(ny - 1, max(0, iy)))


def _owning_cells(
    mbrs: np.ndarray, space: Rect, nx: int, ny: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Disjoint owner tile per row: the cell of the MBR's lower-left.

    Every MBR corner lies inside ``space`` (the joint bounding box), so
    the raw cell index is non-negative; the upper clamp folds the
    ``xmin == space.xmax`` edge into the last column, mirroring
    :func:`owning_tile`.  Used by kNN task formation, where *any*
    deterministic disjoint assignment of left objects is correct.
    """
    n = len(mbrs)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if space.width:
        cell_x = (
            (mbrs[:, 0] - space.xmin) / space.width * nx
        ).astype(np.int64)
    else:
        cell_x = np.zeros(n, dtype=np.int64)
    if space.height:
        cell_y = (
            (mbrs[:, 1] - space.ymin) / space.height * ny
        ).astype(np.int64)
    else:
        cell_y = np.zeros(n, dtype=np.int64)
    return (
        np.clip(cell_x, 0, nx - 1),
        np.clip(cell_y, 0, ny - 1),
    )


def _probe_rows(
    mbrs_a: np.ndarray,
    bounds: np.ndarray,
    idx_a: np.ndarray,
    mbrs_b: np.ndarray,
) -> np.ndarray:
    """Right rows a kNN task must probe: MBRs inside the task's bbox.

    The probe bounding box is the union of each member's MBR expanded
    by its per-object bound ``d_k(a)`` — a superset of the union of the
    per-object probe regions, so coverage is preserved (extra rows only
    add work; each left object's exact top-k filters them out).  An
    ``inf`` bound (``k >= |B|``) makes the box unbounded and selects
    every right row.
    """
    if idx_a.size == 0 or len(mbrs_b) == 0:
        return np.empty(0, dtype=np.intp)
    d = bounds[idx_a]
    box_xmin = np.min(mbrs_a[idx_a, 0] - d)
    box_ymin = np.min(mbrs_a[idx_a, 1] - d)
    box_xmax = np.max(mbrs_a[idx_a, 2] + d)
    box_ymax = np.max(mbrs_a[idx_a, 3] + d)
    mask = (
        (mbrs_b[:, 0] <= box_xmax)
        & (box_xmin <= mbrs_b[:, 2])
        & (mbrs_b[:, 1] <= box_ymax)
        & (box_ymin <= mbrs_b[:, 3])
    )
    return np.nonzero(mask)[0]


# ---------------------------------------------------------------------------
# Tile formation strategies (JoinConfig.partitioner).
# ---------------------------------------------------------------------------

#: declustering curves accepted by :class:`TreePartitioner`.
DECLUSTER_CURVES = ("hilbert", "zorder")

#: curve resolution for task declustering: 2**10 cells per axis is far
#: finer than any task count the partitioner produces.
_DECLUSTER_ORDER = 10


@dataclass
class PartitionPlan:
    """One join's task decomposition, produced by a :class:`Partitioner`.

    ``entries`` is ``[(key, idx_a, idx_b), ...]`` in *dispatch* order —
    ascending ``key`` order for the grid strategy, space-filling-curve
    order for the tree strategy (declustering); the executor always
    folds outcomes back in ascending ``key`` order, so dispatch order
    never affects results.  Grid plans include empty tiles (their
    :class:`PartitionStats` shells appear with zero counts, as the
    serial partitioned join reports them); tree plans contain only
    non-empty tasks.

    ``space``/``grid`` carry the reference-tile de-duplication frame of
    the grid strategy.  Both are ``None`` for tree plans: leaf-overlap
    tasks partition the candidate-pair space disjointly, so every pair a
    task's local join emits is owned by that task.
    """

    partitioner: str
    space: Optional[Rect]
    grid: Optional[Tuple[int, int]]
    entries: List[Tuple[Tuple[int, int], np.ndarray, np.ndarray]]

    @property
    def space_tuple(self) -> Optional[Tuple[float, float, float, float]]:
        if self.space is None:
            return None
        return (
            self.space.xmin, self.space.ymin,
            self.space.xmax, self.space.ymax,
        )

    def partition_shells(self) -> List[PartitionStats]:
        """Zero-count :class:`PartitionStats` per entry, in key order."""
        return [
            PartitionStats(tile=key, objects_a=len(idx_a),
                           objects_b=len(idx_b))
            for key, idx_a, idx_b in sorted(
                self.entries, key=lambda entry: entry[0]
            )
        ]


class Partitioner(ABC):
    """Strategy turning two relations into per-task candidate index sets."""

    #: strategy name as used by ``JoinConfig.partitioner`` and the CLI.
    name: ClassVar[str] = "?"

    @abstractmethod
    def plan(
        self,
        relation_a: SpatialRelation,
        relation_b: SpatialRelation,
        grid: Tuple[int, int],
    ) -> PartitionPlan:
        """Decompose the join (``grid`` is the grid strategy's shape)."""

    @abstractmethod
    def plan_proximity(
        self,
        relation_a: SpatialRelation,
        relation_b: SpatialRelation,
        grid: Tuple[int, int],
        config: JoinConfig,
    ) -> PartitionPlan:
        """ε-aware decomposition for the proximity predicates.

        The MBR-overlap plans of :meth:`plan` lose qualifying pairs for
        ``predicate='distance'``/``'knn'``: an ε-near pair can straddle
        tiles without any MBR overlap.  This variant grows every task's
        probe region so each qualifying pair is covered by at least one
        task:

        * ``distance`` — probe regions grow by ε.  A pair with exact
          distance ≤ ε has MBR gap ≤ ε on both axes, so the two ε/2-
          expanded MBRs intersect — any decomposition that co-locates
          expanded-MBR-overlapping objects covers the pair.  Where
          expansion replicates border objects into several tasks (the
          grid), the plan carries the ``space``/``grid`` frame and
          workers apply the owning-task rule *on the expanded MBRs*
          before any counter moves; tree-guided tasks stay disjoint and
          need no deduplication.
        * ``knn`` — left objects are partitioned disjointly; each
          task's right rows are every MBR within the task's probe
          bounding box, the union of each member's MBR expanded by its
          :func:`~repro.core.proximity.knn_probe_bounds` k-th-neighbour
          upper bound ``d_k(a)`` (any right object in ``a``'s result
          satisfies ``rect_distance ≤ exact ≤ d_k(a)``).  Right-side
          replication is invisible in the result: each left object's
          top-k is computed whole inside its one owning task.

        The plan depends only on the relations and the canonical config
        (ε, k, partitioner shape) — never on worker count, scheduler,
        or wire format — so merged results stay byte-identical across
        every execution configuration.
        """


class GridPartitioner(Partitioner):
    """Uniform-grid tiles with reference-tile de-duplication (PBSM-style).

    A thin strategy wrapper over :func:`plan_tile_indices` — the single
    source of truth for the grid decomposition — so the executor's
    historical behaviour is byte-for-byte unchanged.
    """

    name = "grid"

    def plan(
        self,
        relation_a: SpatialRelation,
        relation_b: SpatialRelation,
        grid: Tuple[int, int],
    ) -> PartitionPlan:
        space, entries = plan_tile_indices(relation_a, relation_b, grid)
        return PartitionPlan(
            partitioner=self.name, space=space, grid=grid, entries=entries
        )

    def plan_proximity(
        self,
        relation_a: SpatialRelation,
        relation_b: SpatialRelation,
        grid: Tuple[int, int],
        config: JoinConfig,
    ) -> PartitionPlan:
        nx, ny = grid
        space = joint_space(relation_a, relation_b)
        tiles = tile_rects(space, nx, ny)
        if config.predicate == "distance":
            # ε/2-expanded replication: both members of any qualifying
            # pair land together in the tile owning the expanded-MBR
            # intersection's reference point, so the worker-side
            # expanded owning-tile rule sees every candidate exactly
            # once across tasks.
            half = config.epsilon / 2.0
            indices_a = assign_tile_indices(
                relation_a.columnar().mbrs, tiles, expand=half
            )
            indices_b = assign_tile_indices(
                relation_b.columnar().mbrs, tiles, expand=half
            )
            entries = [
                (key, indices_a[key], indices_b[key]) for key in tiles
            ]
            return PartitionPlan(
                partitioner=self.name, space=space, grid=grid,
                entries=entries,
            )
        # knn: disjoint left partition (each object owned by the tile
        # of its MBR's lower-left corner), right rows replicated by the
        # per-object probe bound.  No dedup frame: each left object's
        # top-k is produced whole by its one task.
        from .proximity import knn_probe_bounds

        bounds = knn_probe_bounds(
            relation_a, relation_b, config.k, config.rtree_max_entries
        )
        mbrs_a = relation_a.columnar().mbrs
        mbrs_b = relation_b.columnar().mbrs
        cell_x, cell_y = _owning_cells(mbrs_a, space, nx, ny)
        entries = []
        for key in tiles:
            idx_a = np.nonzero(
                (cell_x == key[0]) & (cell_y == key[1])
            )[0]
            idx_b = _probe_rows(mbrs_a, bounds, idx_a, mbrs_b)
            entries.append((key, idx_a, idx_b))
        return PartitionPlan(
            partitioner=self.name, space=None, grid=None, entries=entries
        )


class TreePartitioner(Partitioner):
    """Tree-guided tile formation: leaf-overlap tasks from an R*-tree join.

    Bulk-loads (or reuses) an R*-tree over each relation's MBR column
    (items are row indices) and runs the restricted synchronized
    traversal of [BKS 93a] — descend the taller tree, prune node pairs
    with disjoint MBRs — but stops descending once a node pair's
    candidate volume ``|A'| * |B'|`` falls under a work budget derived
    from ``target_tasks`` (or both nodes are leaves), emitting the pair
    as one task over the two subtrees' row-index sets.

    Disjointness: every object lives in exactly one leaf of its tree,
    and each traversal step partitions a node pair's candidate space
    among child pairs (dropping only provably-disjoint combinations),
    so every candidate pair lands in **exactly one** task — no
    replication, no reference-tile de-duplication, and the task count
    is a deterministic function of the relations alone (never of the
    worker count), which keeps results identical across worker counts.

    Dispatch order is declustered along a space-filling curve
    (``decluster='hilbert'`` default, or ``'zorder'``) over the task
    regions' centers, so neighbouring hot tasks spread across workers
    under static dispatch instead of queueing consecutively.
    """

    name = "rtree"

    def __init__(
        self,
        target_tasks: int = 64,
        max_entries: int = 8,
        decluster: str = "hilbert",
    ):
        if target_tasks < 1:
            raise ValueError(
                f"target_tasks must be >= 1, got {target_tasks}"
            )
        if decluster not in DECLUSTER_CURVES:
            raise ValueError(
                f"unknown declustering curve {decluster!r}; "
                f"expected one of {DECLUSTER_CURVES}"
            )
        self.target_tasks = target_tasks
        self.max_entries = max_entries
        self.decluster = decluster

    def plan(
        self,
        relation_a: SpatialRelation,
        relation_b: SpatialRelation,
        grid: Tuple[int, int],
    ) -> PartitionPlan:
        del grid  # the grid shape belongs to the grid strategy
        n_a, n_b = len(relation_a), len(relation_b)
        if n_a == 0 or n_b == 0:
            return PartitionPlan(
                partitioner=self.name, space=None, grid=None, entries=[]
            )
        tree_a = relation_a.columnar().partition_tree(self.max_entries)
        tree_b = relation_b.columnar().partition_tree(self.max_entries)
        budget = max(1, -(-(n_a * n_b) // self.target_tasks))
        tasks = self._synchronized_tasks(tree_a, tree_b, budget)
        entries = [
            ((ordinal, -1), rows_a, rows_b)
            for ordinal, (_, rows_a, rows_b) in enumerate(tasks)
        ]
        self._decluster(entries, [region for region, _, _ in tasks])
        return PartitionPlan(
            partitioner=self.name, space=None, grid=None, entries=entries
        )

    def _synchronized_tasks(
        self, tree_a, tree_b, budget: int, epsilon: float = 0.0
    ) -> List[Tuple[Rect, np.ndarray, np.ndarray]]:
        """The budgeted synchronized traversal, ε-aware when asked.

        ``epsilon == 0`` is the historical MBR-overlap traversal
        (``rect_distance == 0`` is exactly :meth:`Rect.intersects`, and
        the emitted region is the node-MBR intersection).  ``epsilon >
        0`` keeps node pairs whose MBR gap is at most ε — node MBRs
        contain their members' MBRs, so the node gap lower-bounds every
        member pair's gap, and pruned pairs can contain no candidate of
        the ε-distance join — and emits the intersection of the two
        ε/2-expanded node MBRs as the task region (non-empty whenever
        the gap is ≤ ε on both axes).  Either way each traversal step
        partitions a node pair's candidate space among child pairs, so
        tasks stay **disjoint**: no replication, no owning-task filter.
        """
        from .distance import rect_distance

        half = epsilon / 2.0
        rows_cache: Dict[int, np.ndarray] = {}
        tasks: List[Tuple[Rect, np.ndarray, np.ndarray]] = []
        stack = [(tree_a.root, tree_b.root)]
        while stack:
            node_a, node_b = stack.pop()
            if rect_distance(node_a.mbr(), node_b.mbr()) > epsilon:
                continue
            rows_a = _subtree_rows(node_a, rows_cache)
            rows_b = _subtree_rows(node_b, rows_cache)
            if (node_a.is_leaf and node_b.is_leaf) or (
                rows_a.size * rows_b.size <= budget
            ):
                region = (
                    node_a.mbr().expand(half).intersection(
                        node_b.mbr().expand(half)
                    )
                    if half
                    else node_a.mbr().intersection(node_b.mbr())
                )
                tasks.append((region, rows_a, rows_b))
                continue
            # Descend the taller tree (leaves pinned), reverse order so
            # the LIFO stack visits children in tree order — the task
            # (key) order stays a deterministic traversal invariant.
            if not node_a.is_leaf and (
                node_b.is_leaf or node_a.level >= node_b.level
            ):
                for child in reversed(node_a.children):
                    if rect_distance(child.mbr(), node_b.mbr()) <= epsilon:
                        stack.append((child, node_b))
            else:
                for child in reversed(node_b.children):
                    if rect_distance(node_a.mbr(), child.mbr()) <= epsilon:
                        stack.append((node_a, child))
        return tasks

    def plan_proximity(
        self,
        relation_a: SpatialRelation,
        relation_b: SpatialRelation,
        grid: Tuple[int, int],
        config: JoinConfig,
    ) -> PartitionPlan:
        del grid  # the grid shape belongs to the grid strategy
        n_a, n_b = len(relation_a), len(relation_b)
        if n_a == 0 or n_b == 0:
            return PartitionPlan(
                partitioner=self.name, space=None, grid=None, entries=[]
            )
        if config.predicate == "distance":
            tree_a = relation_a.columnar().partition_tree(self.max_entries)
            tree_b = relation_b.columnar().partition_tree(self.max_entries)
            budget = max(1, -(-(n_a * n_b) // self.target_tasks))
            tasks = self._synchronized_tasks(
                tree_a, tree_b, budget, epsilon=config.epsilon
            )
            entries = [
                ((ordinal, -1), rows_a, rows_b)
                for ordinal, (_, rows_a, rows_b) in enumerate(tasks)
            ]
            self._decluster(entries, [region for region, _, _ in tasks])
            return PartitionPlan(
                partitioner=self.name, space=None, grid=None,
                entries=entries,
            )
        # knn: the left tree alone is descended to a row budget — its
        # subtrees partition the left relation disjointly and follow
        # the data's clustering — and each task's right rows come from
        # the probe bounding box of its members' d_k(a)-expanded MBRs.
        from .proximity import knn_probe_bounds

        bounds = knn_probe_bounds(
            relation_a, relation_b, config.k, config.rtree_max_entries
        )
        mbrs_a = relation_a.columnar().mbrs
        mbrs_b = relation_b.columnar().mbrs
        tree_a = relation_a.columnar().partition_tree(self.max_entries)
        row_budget = max(1, -(-n_a // self.target_tasks))
        rows_cache: Dict[int, np.ndarray] = {}
        subtrees: List[Tuple[Rect, np.ndarray]] = []
        stack = [tree_a.root]
        while stack:
            node = stack.pop()
            rows = _subtree_rows(node, rows_cache)
            if node.is_leaf or rows.size <= row_budget:
                subtrees.append((node.mbr(), rows))
                continue
            for child in reversed(node.children):
                stack.append(child)
        entries = [
            (
                (ordinal, -1),
                rows,
                _probe_rows(mbrs_a, bounds, rows, mbrs_b),
            )
            for ordinal, (_, rows) in enumerate(subtrees)
        ]
        self._decluster(entries, [mbr for mbr, _ in subtrees])
        return PartitionPlan(
            partitioner=self.name, space=None, grid=None, entries=entries
        )

    def _decluster(self, entries, regions: List[Rect]) -> None:
        """Order dispatch along the space-filling curve of task centers."""
        if len(entries) < 2:
            return
        from ..index.hilbert import HilbertMapper, hilbert_d_from_xy
        from ..index.zorder import interleave_bits

        mapper = HilbertMapper(
            Rect.union_all(regions), order=_DECLUSTER_ORDER
        )
        curve = (
            hilbert_d_from_xy
            if self.decluster == "hilbert"
            else lambda order, x, y: interleave_bits(x, y, order)
        )

        def curve_index(region: Rect) -> int:
            x, y = mapper.cell_of(region.center)
            return curve(_DECLUSTER_ORDER, x, y)

        order = sorted(
            range(len(entries)),
            key=lambda i: (curve_index(regions[i]), i),
        )
        entries[:] = [entries[i] for i in order]


def _subtree_rows(node, cache: Dict[int, np.ndarray]) -> np.ndarray:
    """Ascending row indices stored under ``node`` (cached per node).

    Ascending order keeps each task's objects in relation order, exactly
    as the grid partitioner's index arrays do.
    """
    rows = cache.get(id(node))
    if rows is None:
        out: List[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                out.extend(entry.item for entry in current.entries)
            else:
                stack.extend(current.children)
        out.sort()
        rows = np.asarray(out, dtype=np.intp)
        cache[id(node)] = rows
    return rows


def create_partitioner(name: str, target_tasks: int = 64) -> Partitioner:
    """Instantiate the strategy selected by ``JoinConfig.partitioner``.

    ``target_tasks`` is the tree strategy's budget knob
    (``JoinConfig.target_tasks``, CLI ``--target-tasks``); the grid
    strategy has no use for it.
    """
    if name == GridPartitioner.name:
        return GridPartitioner()
    if name == TreePartitioner.name:
        return TreePartitioner(target_tasks=target_tasks)
    raise ValueError(
        f"unknown partitioner {name!r}; expected one of {PARTITIONERS}"
    )
