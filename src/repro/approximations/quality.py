"""Approximation quality measures (§3.1, §3.2, §3.4).

* ``false_area``            — area(approx) − area(object)
* ``normalized_false_area`` — false area / area(object)          (Table 1)
* ``mbr_based_false_area``  — area(approx ∩ MBR) − area(object),
                              normalised to the object area       (Fig. 4)
* ``area_extension``        — x-extension · y-extension of the
                              approximation's own MBR             (Fig. 9)
"""

from __future__ import annotations

from typing import List

from ..geometry import (
    Polygon,
    Rect,
    clip_convex,
    convex_intersection_area,
    polygon_signed_area,
)
from .base import Approximation


def false_area(polygon: Polygon, approx: Approximation) -> float:
    """Area of the approximation not covered by the object.

    For conservative approximations this is ≥ 0 (up to construction
    tolerance); the paper stores it per object to drive the false-area
    test.
    """
    return approx.area() - polygon.area()


def normalized_false_area(polygon: Polygon, approx: Approximation) -> float:
    """False area divided by the object area (Table 1 measure)."""
    area = polygon.area()
    if area <= 0:
        raise ValueError("polygon with non-positive area")
    return false_area(polygon, approx) / area


def mbr_based_false_area(polygon: Polygon, approx: Approximation) -> float:
    """MBR-based false area, normalised to the object area (Fig. 4).

    Because the MBR is always tested first, only the part of the
    approximation *inside* the MBR matters: the measure is
    ``area(approx ∩ MBR) − area(object)`` over ``area(object)``.
    """
    mbr = polygon.mbr()
    inter_area = _intersection_area_with_rect(approx, mbr)
    return (inter_area - polygon.area()) / polygon.area()


def _intersection_area_with_rect(approx: Approximation, rect: Rect) -> float:
    corners = list(rect.corners())
    if approx.shape_kind == "convex":
        return convex_intersection_area(approx.convex_vertices(), corners)
    if approx.shape_kind == "circle":
        poly = approx.circle().boundary_points(n=256)
        return convex_intersection_area(poly, corners)
    if approx.shape_kind == "ellipse":
        poly = approx.ellipse().boundary_points(n=256)
        return convex_intersection_area(poly, corners)
    raise TypeError(f"unknown shape kind {approx.shape_kind}")


def area_extension(approx: Approximation) -> float:
    """Product of x- and y-extension of the approximation (Fig. 9).

    This is the quantity that grows when a non-rectilinear approximation
    is used *instead of* the MBR as the R*-tree key (§3.4, approach 1):
    page regions are rectilinear, so what counts is the approximation's
    own bounding box.
    """
    mbr = approx.mbr()
    return mbr.width * mbr.height


def area_extension_ratio(polygon: Polygon, approx: Approximation) -> float:
    """Area extension of the approximation relative to the object MBR."""
    obj_ext = polygon.mbr().area()
    if obj_ext <= 0:
        raise ValueError("object MBR with zero area")
    return area_extension(approx) / obj_ext


def progressive_coverage(polygon: Polygon, approx: Approximation) -> float:
    """Area of a progressive approximation over the object area (Fig. 8)."""
    return approx.area() / polygon.area()
