"""Measured multi-process speedup vs the LPT-modeled makespan.

``simulate_parallel_join(..., measure=True)`` runs the same tiles twice:
through the deterministic LPT scheduling model (§5 cost constants) and
on a real :class:`ProcessPoolExecutor`.  This bench prints both columns
side by side — the paper's §6 outlook next to what this host actually
delivers — and asserts the real executor's results stay identical to
the serial join while its workers=1 overhead (pickling, task planning)
stays bounded.

Measured speedups on small relations are dominated by fork/pickle
overhead, so the assertion bar is correctness plus *reporting*, not a
wall-clock floor: CI boxes are too noisy to gate on parallel wall
clock.
"""

from __future__ import annotations

import time

from repro.core import (
    JoinConfig,
    SpatialJoinProcessor,
    parallel_partitioned_join,
    simulate_parallel_join,
)

WORKER_COUNTS = (1, 2, 4)
GRID = (4, 4)


def test_measured_vs_modeled_speedup(series_cache, report):
    series = series_cache("Europe A")
    rel_a, rel_b = series.relation_a, series.relation_b
    config = JoinConfig(exact_method="vectorized", engine="batched")

    result = simulate_parallel_join(
        rel_a, rel_b, grid=GRID, processor_counts=WORKER_COUNTS,
        config=config, measure=True,
    )

    lines = [
        f" tiles: {GRID[0]}x{GRID[1]} = {GRID[0] * GRID[1]}, "
        f"result pairs: {len(result.result)}",
        f" {'workers':>8} {'modeled':>9} {'measured':>9} {'wall':>9}",
    ]
    measured_by_workers = {m.workers: m for m in result.measured}
    for workers, modeled, measured in result.speedup_table():
        run = measured_by_workers[workers]
        lines.append(
            f" {workers:>8} {modeled:>8.2f}x {measured:>8.2f}x"
            f" {run.wall_seconds * 1e3:>7.0f}ms"
        )
    lines += [
        " (modeled = LPT makespan under the paper's Table-6/§5 cost",
        "  constants; measured = real ProcessPoolExecutor wall clock,",
        "  including fork and tile-pickling overhead)",
    ]
    report.table(
        "Parallel exec", "measured vs LPT-modeled parallel speedup", lines
    )

    assert len(result.measured) == len(WORKER_COUNTS)
    for run in result.measured:
        assert run.wall_seconds > 0
    baseline = measured_by_workers[1]
    assert baseline.speedup == 1.0
    # The model is an upper bound in spirit: it ignores fork/pickle
    # costs, so measured speedup must not exceed modeled by more than
    # timer noise.
    for workers, modeled, measured in result.speedup_table():
        assert measured <= modeled * 1.5 + 0.5, (
            f"measured {measured:.2f}x exceeds modeled {modeled:.2f}x "
            f"at {workers} workers — the cost model lost its meaning"
        )


def test_parallel_executor_matches_serial_at_scale(series_cache, report):
    """End-to-end: bench-scale relations through the real pool."""
    series = series_cache("Europe A")
    rel_a, rel_b = series.relation_a, series.relation_b
    config = JoinConfig(exact_method="vectorized", engine="batched")

    start = time.perf_counter()
    serial = SpatialJoinProcessor(config).join(rel_a, rel_b)
    serial_wall = time.perf_counter() - start

    parallel = parallel_partitioned_join(
        rel_a, rel_b, grid=GRID, config=config, workers=4
    )
    assert sorted(parallel.id_pairs()) == sorted(serial.id_pairs())
    parallel.stats.check_invariants()

    report.table(
        "Parallel e2e",
        "serial plain join vs 4-worker tile executor",
        [
            f" serial: {serial_wall * 1e3:.0f}ms, parallel(4): "
            f"{parallel.elapsed_seconds * 1e3:.0f}ms over "
            f"{parallel.tile_tasks} tile tasks",
            f" worker busy time: {parallel.busy_seconds * 1e3:.0f}ms "
            "(replication makes total tile work exceed the plain join)",
        ],
    )
