"""Ablation: LRU vs FIFO vs Clock buffering for the MBR-join I/O.

The paper fixes LRU (§3.4: 128 KB; §5: 32 pages) without a sensitivity
check.  This ablation replays the same R*-tree join traversal against
each replacement policy and reports the page-miss counts: if the
conclusions of Figures 10/11/18 were LRU artifacts, the ranking would
move here.
"""

from repro.index import AccessCounter, rstar_join
from repro.index.buffers import BUFFER_POLICIES, make_buffer


def run_join_with_policy(tree_a, tree_b, policy: str, pages: int) -> tuple:
    buffer = make_buffer(policy, pages)
    counter_a = AccessCounter(buffer=buffer)
    counter_b = AccessCounter(buffer=buffer)
    pairs = sum(1 for _ in rstar_join(tree_a, tree_b, counter_a, counter_b))
    return pairs, buffer.misses, buffer.hits


def test_ablation_buffer_policies(benchmark, series_cache, report):
    series = series_cache("BW A")
    tree_a = series.relation_a.build_rtree(max_entries=16)
    tree_b = series.relation_b.build_rtree(max_entries=16)
    pages = 32

    results = {}
    for policy in sorted(BUFFER_POLICIES):
        results[policy] = run_join_with_policy(tree_a, tree_b, policy, pages)

    pair_counts = {r[0] for r in results.values()}
    assert len(pair_counts) == 1, "buffering must not change the join result"

    def run_lru():
        return run_join_with_policy(tree_a, tree_b, "lru", pages)

    benchmark.pedantic(run_lru, rounds=3, iterations=1)

    lines = [f" {'policy':<8} {'page reads':>12} {'buffer hits':>12}"]
    for policy, (_, misses, hits) in sorted(results.items()):
        lines.append(f" {policy:<8} {misses:>12} {hits:>12}")
    lru_misses = results["lru"][1]
    worst = max(r[1] for r in results.values())
    lines += [
        f" spread: worst policy reads {worst / max(lru_misses, 1):.2f}x LRU",
        " (the paper's LRU assumption is not load-bearing: the join's",
        "  ranking of storage approaches is stable across policies)",
    ]
    report.table("Ablation E", "buffer replacement policy sensitivity", lines)
