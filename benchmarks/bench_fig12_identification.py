"""Figure 12: division of the BW A candidate set by the recommended filter.

Paper (5-corner test + MER test on BW A): 23% identified false hits,
23% identified hits, 10% non-identified false hits, 44% non-identified
hits — 46% of all candidate pairs resolved without exact geometry.
"""

from repro.approximations import approx_intersect

PAPER = {
    "identified false hits": 23,
    "identified hits": 23,
    "non-identified false hits": 10,
    "non-identified hits": 44,
}


def classify(pairs):
    counts = {k: 0 for k in PAPER}
    for obj_a, obj_b, hit in pairs:
        if hit:
            proven = approx_intersect(
                obj_a.approximation("MER"), obj_b.approximation("MER")
            )
            counts["identified hits" if proven else "non-identified hits"] += 1
        else:
            eliminated = not approx_intersect(
                obj_a.approximation("5-C"), obj_b.approximation("5-C")
            )
            key = (
                "identified false hits"
                if eliminated
                else "non-identified false hits"
            )
            counts[key] += 1
    return counts


def test_fig12_identification_split(benchmark, classified, report):
    pairs = classified("BW A")
    counts = benchmark.pedantic(lambda: classify(pairs), rounds=1, iterations=1)
    total = sum(counts.values())

    lines = [f"{'class':>28} {'measured':>9} {'paper':>7}"]
    for key in PAPER:
        pct = 100.0 * counts[key] / total
        lines.append(f"{key:>28} {pct:>8.0f}% {PAPER[key]:>6}%")
    identified = counts["identified false hits"] + counts["identified hits"]
    lines.append(
        f"{'identified total':>28} {100.0 * identified / total:>8.0f}% "
        f"{46:>6}%"
    )
    report.table("Fig 12", "identified vs non-identified pairs (BW A)", lines)

    # Headline: a substantial share of the candidate set never reaches
    # the exact geometry processor.
    assert identified / total >= 0.30, f"only {identified/total:.0%} identified"
