"""Alternative page-buffer replacement policies (FIFO, Clock, 2Q-lite).

The paper's experiments fix an LRU buffer (§3.4: 128 KB LRU; §5: 32
pages).  To check how sensitive the reported I/O ratios are to that
choice, this module adds the classic alternatives with the same
interface as :class:`~repro.index.pagemodel.LRUBuffer` — ``access``
returns True on a hit and the hit/miss counters drive
:class:`~repro.index.pagemodel.IOStats`.  The buffer-policy ablation
bench sweeps them against each other.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Hashable

from .pagemodel import LRUBuffer


class FIFOBuffer:
    """First-in-first-out page buffer (no recency update on hits)."""

    def __init__(self, capacity_pages: int):
        if capacity_pages < 1:
            raise ValueError("buffer needs at least one page")
        self.capacity_pages = capacity_pages
        self._queue: Deque[Hashable] = deque()
        self._resident: set = set()
        self.hits = 0
        self.misses = 0

    def access(self, page_id: Hashable) -> bool:
        if page_id in self._resident:
            self.hits += 1
            return True
        self.misses += 1
        self._queue.append(page_id)
        self._resident.add(page_id)
        if len(self._queue) > self.capacity_pages:
            evicted = self._queue.popleft()
            self._resident.discard(evicted)
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        self._queue.clear()
        self._resident.clear()
        self.reset_counters()


class ClockBuffer:
    """Second-chance (clock) replacement: an approximation of LRU."""

    def __init__(self, capacity_pages: int):
        if capacity_pages < 1:
            raise ValueError("buffer needs at least one page")
        self.capacity_pages = capacity_pages
        self._frames: "OrderedDict[Hashable, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, page_id: Hashable) -> bool:
        if page_id in self._frames:
            self._frames[page_id] = True  # reference bit
            self.hits += 1
            return True
        self.misses += 1
        if len(self._frames) >= self.capacity_pages:
            self._evict()
        self._frames[page_id] = False
        return False

    def _evict(self) -> None:
        # Sweep the clock hand: clear reference bits until an
        # unreferenced frame is found.
        while True:
            page_id, referenced = next(iter(self._frames.items()))
            if referenced:
                self._frames[page_id] = False
                self._frames.move_to_end(page_id)
            else:
                del self._frames[page_id]
                return

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        self._frames.clear()
        self.reset_counters()


#: buffer policy registry used by the ablation bench and the CLI.
BUFFER_POLICIES: Dict[str, type] = {
    "lru": LRUBuffer,
    "fifo": FIFOBuffer,
    "clock": ClockBuffer,
}


def make_buffer(policy: str, capacity_pages: int):
    """Construct a buffer by policy name ('lru', 'fifo' or 'clock')."""
    try:
        cls = BUFFER_POLICIES[policy.lower()]
    except KeyError:
        raise ValueError(
            f"unknown buffer policy {policy!r}; expected one of "
            f"{sorted(BUFFER_POLICIES)}"
        ) from None
    return cls(capacity_pages)
