"""§3.4 / Figure 9: area extension of approximations relative to the MBR.

Paper: storing the approximation *instead of* the MBR inflates the page
regions — the 5-C's area extension is ~21% above the MBR's, the 4-C's
44%, the RMBR's 51% and the MBE's 22%.
"""

from repro.approximations import area_extension_ratio
from repro.datasets import bw, europe

KINDS = ("RMBR", "4-C", "5-C", "MBE")
PAPER_PCT = {"RMBR": 51, "4-C": 44, "5-C": 21, "MBE": 22}


def test_fig9_area_extension(benchmark, scale, report):
    eu = europe(size=scale.europe_size)
    b = bw(size=scale.bw_size)
    objs = eu.objects + b.objects

    def compute():
        out = {}
        for kind in KINDS:
            ratios = [
                area_extension_ratio(o.polygon, o.approximation(kind))
                for o in objs
            ]
            out[kind] = 100.0 * (sum(ratios) / len(ratios) - 1.0)
        return out

    extension = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = [f"{'approx':>7} {'extension %':>12} {'paper %':>9}"]
    for kind in KINDS:
        lines.append(
            f"{kind:>7} {extension[kind]:>11.0f}% {PAPER_PCT[kind]:>8}%"
        )
    report.table(
        "Fig 9", "area extension vs MBR (approach-1 penalty)", lines
    )

    for kind in KINDS:
        assert extension[kind] >= 0.0, f"{kind} extension negative"
    # The 5-corner hugs the object tighter than the 4-corner and RMBR.
    assert extension["5-C"] <= extension["4-C"] + 1e-9
    assert extension["5-C"] <= extension["RMBR"] + 1e-9
