"""The :class:`Engine` abstraction shared by both execution backends.

An engine owns steps 2 and 3 of the multi-step join for one
:class:`~repro.core.join.JoinConfig`: it consumes the candidate stream
of the R*-tree MBR-join and decides, per pair, hit / false hit / exact
test.  Step 1 (tree building, I/O accounting, the synchronised traversal)
is identical for every engine and lives here in :meth:`Engine.execute`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Iterator, Tuple

from ..core.join import ENGINES, JoinConfig
from ..core.stats import MultiStepStats
from ..datasets.relations import SpatialObject, SpatialRelation
from ..exact import (
    polygons_intersect_planesweep,
    polygons_intersect_quadratic,
    polygons_intersect_trstar,
)
from ..geometry.fastops import polygons_intersect_fast
from ..index import AccessCounter, LRUBuffer, rstar_join

Pair = Tuple[SpatialObject, SpatialObject]


class Engine(ABC):
    """One execution strategy for steps 2 and 3 of the multi-step join."""

    #: engine name as used by ``JoinConfig.engine`` and the CLI.
    name: ClassVar[str] = "?"

    def __init__(self, config: JoinConfig = None):
        self.config = config if config is not None else JoinConfig()

    # -- step 1 (shared) ----------------------------------------------------

    def execute(
        self,
        relation_a: SpatialRelation,
        relation_b: SpatialRelation,
        stats: MultiStepStats,
    ) -> Iterator[Pair]:
        """Run the full three-step join, yielding result pairs."""
        cfg = self.config
        counter_a = counter_b = None
        if cfg.buffer_pages is not None:
            buffer = LRUBuffer(cfg.buffer_pages)
            counter_a = AccessCounter(buffer=buffer)
            counter_b = AccessCounter(buffer=buffer)
        tree_a = relation_a.build_rtree(max_entries=cfg.rtree_max_entries)
        tree_b = relation_b.build_rtree(max_entries=cfg.rtree_max_entries)
        candidates = rstar_join(
            tree_a, tree_b, counter_a, counter_b, stats.mbr_join
        )
        return self.process(candidates, stats)

    # -- steps 2 + 3 (strategy) ---------------------------------------------

    @abstractmethod
    def process(
        self, candidates: Iterator[Pair], stats: MultiStepStats
    ) -> Iterator[Pair]:
        """Classify the candidate stream; yield the qualifying pairs."""

    # -- step 3 helpers (shared) --------------------------------------------

    def resolve_exact(
        self, obj_a: SpatialObject, obj_b: SpatialObject, stats: MultiStepStats
    ) -> bool:
        """Run the exact step on one remaining candidate, updating stats."""
        stats.remaining_candidates += 1
        if self.config.predicate == "within":
            from ..core.within import within_exact

            qualified = within_exact(obj_a, obj_b)
        else:
            qualified = self.exact_test(obj_a, obj_b, stats)
        if qualified:
            stats.exact_hits += 1
        else:
            stats.exact_false_hits += 1
        return qualified

    def exact_test(
        self, obj_a: SpatialObject, obj_b: SpatialObject, stats: MultiStepStats
    ) -> bool:
        """Exact intersection test with the configured processor."""
        cfg = self.config
        if cfg.exact_method == "trstar":
            return polygons_intersect_trstar(
                obj_a.trstar(cfg.trstar_max_entries),
                obj_b.trstar(cfg.trstar_max_entries),
                stats.exact_ops,
            )
        if cfg.exact_method == "planesweep":
            return polygons_intersect_planesweep(
                obj_a.polygon,
                obj_b.polygon,
                stats.exact_ops,
                restrict_search_space=cfg.restrict_search_space,
            )
        if cfg.exact_method == "quadratic":
            return polygons_intersect_quadratic(
                obj_a.polygon, obj_b.polygon, stats.exact_ops
            )
        return polygons_intersect_fast(obj_a.polygon, obj_b.polygon)


def create_engine(config: JoinConfig = None) -> Engine:
    """Instantiate the engine selected by ``config.engine``."""
    from .batched import BatchedEngine
    from .streaming import StreamingEngine

    config = config if config is not None else JoinConfig()
    if config.engine == StreamingEngine.name:
        return StreamingEngine(config)
    if config.engine == BatchedEngine.name:
        return BatchedEngine(config)
    raise ValueError(
        f"unknown engine {config.engine!r}; expected one of {ENGINES}"
    )
