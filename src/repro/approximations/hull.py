"""Convex hull approximation (variable parameter count).

The most accurate convex conservative approximation; its storage varies
with the object (the paper measured 26 parameters on average for Europe
and 46 for BW), which is why §3.2 prefers the 5-corner for SAM storage.
"""

from __future__ import annotations

from ..geometry import Polygon, convex_hull
from .base import ConvexApproximation


class ConvexHullApproximation(ConvexApproximation):
    """Convex hull of the polygon's vertices."""

    kind = "CH"
    is_conservative = True

    @classmethod
    def of(cls, polygon: Polygon) -> "ConvexHullApproximation":
        return cls(convex_hull(polygon.shell))

    @property
    def num_parameters(self) -> int:
        return 2 * len(self._vertices)

    def __repr__(self) -> str:
        return f"ConvexHullApproximation(vertices={len(self._vertices)})"
