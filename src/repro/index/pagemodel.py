"""Disk-page and LRU-buffer model for I/O accounting.

The paper's I/O experiments (§3.4, §3.5, §5) count page accesses of an
R*-tree whose nodes occupy fixed-size disk pages, in front of an LRU
buffer (128 KB in §3.4; 32 pages of 4 KB in §5).  We model exactly that:
every tree node is one page; traversals report node visits to an
:class:`LRUBuffer`, which counts buffer hits and actual (missed) reads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, Optional


class LRUBuffer:
    """Least-recently-used page buffer with hit/miss accounting."""

    def __init__(self, capacity_pages: int):
        if capacity_pages < 1:
            raise ValueError("buffer needs at least one page")
        self.capacity_pages = capacity_pages
        self._pages: "OrderedDict[Hashable, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, page_id: Hashable) -> bool:
        """Record an access; returns True on a buffer hit."""
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[page_id] = None
        if len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        self._pages.clear()
        self.reset_counters()


@dataclass
class PageLayout:
    """Byte-level page layout of an R*-tree (paper §3.4/§5 assumptions).

    The paper assumes per object: 16 bytes MBR, 16 bytes MER, 20 bytes
    RMBR, 40 bytes 5-C, and 32 bytes of additional information.  The
    directory stores an MBR plus a child pointer per entry.
    """

    page_size: int = 4096
    mbr_bytes: int = 16
    pointer_bytes: int = 4
    info_bytes: int = 32
    #: extra approximation bytes stored per leaf entry (0 = MBR only).
    extra_leaf_bytes: int = 0
    #: bytes of the geometric key itself (16 = plain MBR).
    key_bytes: int = 16

    def leaf_capacity(self) -> int:
        entry = self.key_bytes + self.extra_leaf_bytes + self.info_bytes
        return max(2, self.page_size // entry)

    def directory_capacity(self) -> int:
        entry = self.mbr_bytes + self.pointer_bytes
        return max(2, self.page_size // entry)

    def buffer_pages(self, buffer_bytes: int) -> int:
        return max(1, buffer_bytes // self.page_size)


#: approximation storage sizes in bytes used by the paper (§3.4, §5).
APPROX_BYTES = {
    "MBR": 16,
    "MER": 16,
    "MEC": 12,
    "RMBR": 20,
    "4-C": 32,
    "5-C": 40,
    "MBC": 12,
    "MBE": 20,
}


@dataclass
class IOStats:
    """Aggregate page-access statistics of one experiment run."""

    page_accesses: int = 0
    buffer_hits: int = 0

    @property
    def total_requests(self) -> int:
        return self.page_accesses + self.buffer_hits

    def merge(self, buffer: LRUBuffer) -> "IOStats":
        self.page_accesses += buffer.misses
        self.buffer_hits += buffer.hits
        return self


@dataclass
class AccessCounter:
    """Page-visit recorder shared by tree traversals.

    ``buffer=None`` counts raw node visits (no buffering).
    """

    buffer: Optional[LRUBuffer] = None
    node_visits: int = 0
    page_reads: int = 0
    _seen: set = field(default_factory=set)

    def visit(self, page_id: Hashable) -> None:
        self.node_visits += 1
        if self.buffer is None:
            self.page_reads += 1
            return
        if not self.buffer.access(page_id):
            self.page_reads += 1

    def reset(self) -> None:
        self.node_visits = 0
        self.page_reads = 0
        if self.buffer is not None:
            self.buffer.reset_counters()
