"""Figure 18: total join performance of versions 1-3 (paper §5).

* version 1 — no extra approximations, plane-sweep exact test;
* version 2 — 5-C + MER approximations, plane-sweep exact test;
* version 3 — 5-C + MER approximations, TR*-tree exact test.

Paper: version 2 cuts the total by ~40%; version 3 improves on
version 2 by almost 2x and on version 1 by more than 3x, leaving object
access as the dominant cost.

The §5 cost constants (10 ms/page, 25 ms sweep, 1 ms TR*, 1.5x TR*
access factor) are applied to the paper-scale join (86,000 candidate
pairs); the filter identification rate and the relative MBR-join page
counts are *measured* on our data.
"""

from bench_fig10_storage_approaches import build_objects
from bench_fig11_performance_impact import identification_rate, join_pages
from repro.core import JoinScenario, total_join_cost
from repro.index import APPROX_BYTES

PAPER_PAIRS = 86_000


def test_fig18_total_performance(benchmark, scale, classified, report):
    pairs_meta = classified("Europe A")
    rate = identification_rate(pairs_meta, "5-C")

    # Measured MBR-join page counts, scaled to the paper's 86,000 pairs.
    polys_a = build_objects(scale.io_objects, seed=31)
    polys_b = [p.translated(0.004, 0.004) for p in polys_a]
    base_pages, candidates = join_pages(polys_a, polys_b, 0, 4096)
    extra = APPROX_BYTES["5-C"] + APPROX_BYTES["MER"]
    enlarged_pages, _ = join_pages(polys_a, polys_b, extra, 4096)
    page_scale = PAPER_PAIRS / max(1, candidates)

    def evaluate():
        v1 = total_join_cost(
            JoinScenario(PAPER_PAIRS, 0.0, int(base_pages * page_scale), False),
            "version 1",
        )
        v2 = total_join_cost(
            JoinScenario(
                PAPER_PAIRS, rate, int(enlarged_pages * page_scale), False, True
            ),
            "version 2",
        )
        v3 = total_join_cost(
            JoinScenario(
                PAPER_PAIRS, rate, int(enlarged_pages * page_scale), True, True
            ),
            "version 3",
        )
        return v1, v2, v3

    v1, v2, v3 = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    lines = [
        f"{'version':>10} {'MBR-join s':>11} {'obj access s':>13} "
        f"{'exact s':>9} {'total s':>9}"
    ]
    for v in (v1, v2, v3):
        lines.append(
            f"{v.label:>10} {v.mbr_join:>11.0f} {v.object_access:>13.0f} "
            f"{v.exact_test:>9.0f} {v.total:>9.0f}"
        )
    lines.append(
        f" measured filter identification rate: {rate:.0%} (paper: 46%)"
    )
    lines.append(
        f" v1/v2 = {v1.total / v2.total:.2f}x, v2/v3 = "
        f"{v2.total / v3.total:.2f}x, v1/v3 = {v1.total / v3.total:.2f}x"
    )
    lines.append(" (paper: v1 ~3200s, v2 ~1900s, v3 ~950s; v1/v3 > 3)")
    report.table("Fig 18", "total join performance, versions 1-3", lines)

    assert v1.total > v2.total > v3.total
    assert v1.total / v3.total > 3.0, "paper's >3x total speedup"
    # §5: in version 3, object access dominates the total execution time.
    assert v3.object_access > v3.exact_test
    assert v3.object_access > v3.mbr_join
