"""Tests for trapezoid decomposition, TR*-tree and its intersection test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import (
    build_trstar,
    convex_decomposition,
    ear_clipping_triangulation,
    polygons_intersect_trstar,
    trapezoid_decomposition,
    triangle_decomposition,
)
from repro.geometry import Polygon, cross, polygon_signed_area
from repro.index import TRJoinCounters, TRStarTree, Trapezoid, trstar_trees_intersect
from tests.conftest import star_polygon

stars = st.builds(
    star_polygon,
    n=st.integers(min_value=5, max_value=50),
    seed=st.integers(min_value=0, max_value=5000),
)

UNIT_SQUARE = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])


class TestTrapezoid:
    def test_area(self):
        t = Trapezoid(0, 2, 0.5, 1.5, 0, 1)
        assert t.area() == pytest.approx((2 + 1) / 2)

    def test_mbr(self):
        t = Trapezoid(0, 2, 0.5, 1.5, 0, 1)
        r = t.mbr()
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (0, 0, 2, 1)

    def test_degenerate_triangle_corners(self):
        t = Trapezoid(0, 2, 1, 1, 0, 1)  # top collapses to a point
        assert len(t.corners()) == 3

    def test_intersects_overlapping(self):
        t1 = Trapezoid(0, 2, 0, 2, 0, 1)
        t2 = Trapezoid(1, 3, 1, 3, 0.5, 1.5)
        assert t1.intersects(t2)

    def test_intersects_disjoint(self):
        t1 = Trapezoid(0, 1, 0, 1, 0, 1)
        t2 = Trapezoid(5, 6, 5, 6, 0, 1)
        assert not t1.intersects(t2)

    def test_mbr_overlap_but_shapes_disjoint(self):
        # Two parallel slanted slivers: MBRs overlap, bodies keep a gap
        # of 0.3 - 0.25*y > 0 over the whole slab.
        t1 = Trapezoid(0.0, 0.1, 0.9, 1.0, 0, 1)
        t2 = Trapezoid(0.4, 0.5, 1.05, 1.15, 0, 1)
        assert t1.mbr().intersects(t2.mbr())
        assert not t1.intersects(t2)


class TestTrapezoidDecomposition:
    def test_square_single_trapezoid(self):
        traps = trapezoid_decomposition(UNIT_SQUARE)
        assert len(traps) == 1
        assert traps[0].area() == pytest.approx(1.0)

    @given(stars)
    @settings(max_examples=50, deadline=None)
    def test_areas_sum_to_polygon_area(self, poly):
        traps = trapezoid_decomposition(poly)
        total = sum(t.area() for t in traps)
        assert total == pytest.approx(poly.area(), rel=1e-6)

    @given(stars)
    @settings(max_examples=20, deadline=None)
    def test_trapezoids_inside_polygon_mbr(self, poly):
        mbr = poly.mbr()
        for t in trapezoid_decomposition(poly):
            assert mbr.expand(1e-9).contains_rect(t.mbr())

    def test_polygon_with_hole(self):
        poly = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)],
            holes=[[(1, 1), (3, 1), (3, 3), (1, 3)]],
        )
        traps = trapezoid_decomposition(poly)
        assert sum(t.area() for t in traps) == pytest.approx(12.0)

    def test_thin_polygon_decomposes(self):
        thin = Polygon([(0, 0), (1, 0), (1, 1e-6)])
        traps = trapezoid_decomposition(thin)
        assert sum(t.area() for t in traps) == pytest.approx(
            thin.area(), rel=1e-6
        )


class TestOtherDecompositions:
    @given(stars)
    @settings(max_examples=20, deadline=None)
    def test_triangles_cover_area(self, poly):
        tris = triangle_decomposition(poly)
        total = sum(abs(polygon_signed_area(list(t))) for t in tris)
        assert total == pytest.approx(poly.area(), rel=1e-6)

    @given(stars)
    @settings(max_examples=15, deadline=None)
    def test_ear_clipping_covers_area(self, poly):
        tris = ear_clipping_triangulation(poly)
        total = sum(abs(polygon_signed_area(list(t))) for t in tris)
        assert total == pytest.approx(poly.area(), rel=1e-4)

    def test_ear_clipping_rejects_holes(self):
        holed = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)],
            holes=[[(1, 1), (3, 1), (3, 3), (1, 3)]],
        )
        with pytest.raises(ValueError):
            ear_clipping_triangulation(holed)

    @given(stars)
    @settings(max_examples=15, deadline=None)
    def test_convex_decomposition_pieces_convex_and_cover(self, poly):
        pieces = convex_decomposition(poly)
        total = 0.0
        for piece in pieces:
            n = len(piece)
            assert n >= 3
            for i in range(n):
                assert (
                    cross(piece[i], piece[(i + 1) % n], piece[(i + 2) % n])
                    > -1e-9
                )
            total += abs(polygon_signed_area(piece))
        assert total == pytest.approx(poly.area(), rel=1e-6)

    def test_convex_decomposition_merges_square(self):
        # A square decomposes into one trapezoid; merging keeps it as one
        # convex piece.
        assert len(convex_decomposition(UNIT_SQUARE)) == 1


class TestTRStarTree:
    def test_build_and_count(self):
        poly = star_polygon(n=30, seed=1)
        tree = build_trstar(poly)
        traps = trapezoid_decomposition(poly)
        assert tree.size == len(traps)
        assert sorted(t.area() for t in tree.trapezoids()) == pytest.approx(
            sorted(t.area() for t in traps)
        )

    def test_small_node_capacity(self):
        tree = TRStarTree(max_entries=3)
        assert tree.max_entries == 3

    @pytest.mark.parametrize("m", [3, 4, 5])
    def test_invariants_for_paper_capacities(self, m):
        poly = star_polygon(n=40, seed=2)
        tree = build_trstar(poly, max_entries=m)
        tree.check_invariants()

    def test_intersection_counters_populated(self):
        p1 = star_polygon(0, 0, n=25, seed=3)
        p2 = star_polygon(0.5, 0.2, n=25, seed=4)
        counters = TRJoinCounters()
        result = trstar_trees_intersect(build_trstar(p1), build_trstar(p2), counters)
        assert result
        assert counters.rect_tests > 0
        assert counters.trapezoid_tests >= 1

    def test_disjoint_trees_no_trap_tests(self):
        p1 = star_polygon(0, 0, n=15, seed=5)
        p2 = star_polygon(10, 10, n=15, seed=6)
        counters = TRJoinCounters()
        assert not trstar_trees_intersect(build_trstar(p1), build_trstar(p2), counters)
        assert counters.trapezoid_tests == 0

    @given(stars, stars)
    @settings(max_examples=25, deadline=None)
    def test_matches_vectorized_oracle(self, p1, p2):
        from repro.geometry.fastops import polygons_intersect_fast

        got = polygons_intersect_trstar(build_trstar(p1), build_trstar(p2))
        assert got == polygons_intersect_fast(p1, p2)

    def test_containment_detected(self):
        # One polygon strictly inside the other: trapezoids of the inner
        # object intersect trapezoids of the outer (area containment).
        inner = star_polygon(0, 0, n=12, seed=7, radius=0.3)
        outer = Polygon([(-2, -2), (2, -2), (2, 2), (-2, 2)])
        assert polygons_intersect_trstar(build_trstar(inner), build_trstar(outer))
