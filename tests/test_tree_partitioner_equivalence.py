"""Differential suite: tree-guided partitioning vs grid vs serial join.

The tree partitioner (``JoinConfig(partitioner="rtree")``) forms tasks
from the leaf overlaps of a synchronized R*-tree traversal instead of
uniform grid tiles.  This suite is its correctness contract:

* **serial equality** — the rtree-partitioned parallel join returns
  exactly the plain serial join's result pairs (as a set; the tree
  decomposition owns its own deterministic output order);
* **byte-identity across the runtime matrix** — for a given input the
  rtree join's ordered output is identical across worker counts
  {1, 2, 4}, both schedulers, and both wire formats (its task
  decomposition depends only on the relations, never on the workers);
* **no duplicates** — tree tasks partition the candidate-pair space
  disjointly, so no pair may be emitted twice (no reference-tile rule
  backs this up: a replication bug would surface as a duplicate);
* **grid agreement** — grid- and rtree-partitioned joins agree
  pairwise on every input.

Roughly 150 cases: predicates x engines (4) x generators (uniform and
clustered hot-tile skew) x seeds x workers x wire formats, plus the
zorder-declustering, static-scheduler, plan-shape, and empty-input
checks.  ``REPRO_PAR_QUICK=1`` shrinks the sweep for CI smoke runs.
"""

import os
from dataclasses import replace

import numpy as np
import pytest

from helpers import clustered_relation_pair, random_relation_pair
from repro.core.join import JoinConfig, SpatialJoinProcessor
from repro.core.parallel_exec import (
    parallel_partitioned_join,
    plan_columnar_tile_tasks,
    plan_tile_tasks,
)
from repro.core.partition import (
    DECLUSTER_CURVES,
    GridPartitioner,
    TreePartitioner,
    create_partitioner,
)
from repro.core.session import JoinSession

pytestmark = pytest.mark.parallel

QUICK = os.environ.get("REPRO_PAR_QUICK") == "1"
SEEDS = (3, 11) if QUICK else (3, 11, 29)
WORKERS = (1, 2) if QUICK else (1, 2, 4)
GENERATORS = (random_relation_pair, clustered_relation_pair)

PREDICATE_ENGINES = [
    ("intersects", "streaming"),
    ("intersects", "batched"),
    ("within", "streaming"),
    ("within", "batched"),
]

_relations = {}
_serial = {}
_reference = {}


def _pair(generator, seed):
    key = (generator.__name__, seed)
    if key not in _relations:
        _relations[key] = generator(seed, n_objects=10 if QUICK else 14)
    return _relations[key]


def _config(predicate, engine):
    return JoinConfig(
        predicate=predicate,
        engine=engine,
        exact_method="vectorized",
        batch_size=16,
        partitioner="rtree",
        scheduler="stealing",
    )


def _serial_sorted(generator, seed, predicate, engine):
    key = (generator.__name__, seed, predicate, engine)
    if key not in _serial:
        rel_a, rel_b = _pair(generator, seed)
        result = SpatialJoinProcessor(
            replace(_config(predicate, engine), workers=1)
        ).join(rel_a, rel_b)
        _serial[key] = sorted(result.id_pairs())
    return _serial[key]


def _check(result, generator, seed, predicate, engine, label):
    """Serial set-equality, no duplicates, cross-config byte-identity."""
    got = result.id_pairs()
    assert len(got) == len(set(got)), f"{label}: duplicate pairs"
    assert sorted(got) == _serial_sorted(generator, seed, predicate, engine), (
        f"{label}: pairs diverge from the plain serial join"
    )
    key = (generator.__name__, seed, predicate, engine)
    if key not in _reference:
        _reference[key] = got
    assert got == _reference[key], (
        f"{label}: ordered output diverges from the rtree reference run"
    )
    assert result.partitioner == "rtree"
    result.stats.check_invariants()


@pytest.mark.parametrize("predicate,engine", PREDICATE_ENGINES)
def test_rtree_matches_serial_across_runtime_matrix(predicate, engine):
    for generator in GENERATORS:
        for seed in SEEDS:
            rel_a, rel_b = _pair(generator, seed)
            config = _config(predicate, engine)
            for workers in WORKERS:
                with JoinSession(
                    config=replace(config, workers=workers)
                ) as session:
                    result = session.join(rel_a, rel_b)
                    _check(
                        result, generator, seed, predicate, engine,
                        f"{generator.__name__} seed={seed} workers={workers}",
                    )


@pytest.mark.parametrize("predicate,engine", PREDICATE_ENGINES)
def test_rtree_pickled_slices_and_static_scheduler(predicate, engine):
    for generator in GENERATORS:
        for seed in SEEDS:
            rel_a, rel_b = _pair(generator, seed)
            config = _config(predicate, engine)
            for workers in (1, 2):
                result = parallel_partitioned_join(
                    rel_a, rel_b,
                    config=replace(
                        config, workers=workers, columnar=False
                    ),
                )
                assert result.wire_format == "pickled-slices"
                _check(
                    result, generator, seed, predicate, engine,
                    f"pickled {generator.__name__} seed={seed} "
                    f"workers={workers}",
                )
            result = parallel_partitioned_join(
                rel_a, rel_b,
                config=replace(config, workers=2, scheduler="static"),
            )
            _check(
                result, generator, seed, predicate, engine,
                f"static {generator.__name__} seed={seed}",
            )


def test_grid_and_rtree_agree_pairwise():
    for generator in GENERATORS:
        for seed in SEEDS:
            rel_a, rel_b = _pair(generator, seed)
            base = replace(_config("intersects", "batched"), workers=2)
            grid = parallel_partitioned_join(
                rel_a, rel_b, config=replace(base, partitioner="grid")
            )
            rtree = parallel_partitioned_join(rel_a, rel_b, config=base)
            assert sorted(grid.id_pairs()) == sorted(rtree.id_pairs())
            assert grid.partitioner == "grid"
            assert rtree.partitioner == "rtree"


def test_zorder_declustering_same_results():
    rel_a, rel_b = _pair(random_relation_pair, SEEDS[0])
    hilbert = TreePartitioner(decluster="hilbert").plan(rel_a, rel_b, (4, 4))
    zorder = TreePartitioner(decluster="zorder").plan(rel_a, rel_b, (4, 4))
    # Same tasks, possibly in a different dispatch order.
    as_set = lambda plan: {
        (key, tuple(idx_a.tolist()), tuple(idx_b.tolist()))
        for key, idx_a, idx_b in plan.entries
    }
    assert as_set(hilbert) == as_set(zorder)
    for decluster in DECLUSTER_CURVES:
        result = parallel_partitioned_join(
            rel_a, rel_b,
            config=replace(_config("intersects", "batched"), workers=2),
        )
        assert sorted(result.id_pairs()) == _serial_sorted(
            random_relation_pair, SEEDS[0], "intersects", "batched"
        )


def test_tree_tasks_carry_no_dedup_frame():
    rel_a, rel_b = _pair(random_relation_pair, SEEDS[0])
    config = _config("intersects", "batched")
    tasks, partitions = plan_tile_tasks(rel_a, rel_b, (4, 4), config)
    assert tasks, "tree plan produced no tasks"
    for task in tasks:
        assert task.space is None and task.grid is None
        assert task.tile[1] == -1  # (ordinal, -1) task keys
    assert len(partitions) == len(tasks)  # tree plans list no empty tiles
    tasks, _, shipment = plan_columnar_tile_tasks(
        rel_a, rel_b, (4, 4), config
    )
    try:
        for task in tasks:
            assert task.space is None and task.grid is None
            assert task.idx_a.size and task.idx_b.size
            # Row indices ascend, exactly like the grid plan's arrays.
            assert np.all(np.diff(task.idx_a) > 0)
            assert np.all(np.diff(task.idx_b) > 0)
    finally:
        shipment.close()


def test_grid_tasks_unchanged_by_the_strategy_layer():
    rel_a, rel_b = _pair(random_relation_pair, SEEDS[0])
    config = replace(_config("intersects", "batched"), partitioner="grid")
    tasks, partitions = plan_tile_tasks(rel_a, rel_b, (3, 3), config)
    assert len(partitions) == 9  # every tile, empty ones included
    assert [p.tile for p in partitions] == sorted(p.tile for p in partitions)
    for task in tasks:
        assert task.grid == (3, 3)
        assert task.space is not None


def test_task_count_independent_of_workers():
    rel_a, rel_b = _pair(clustered_relation_pair, SEEDS[0])
    config = _config("intersects", "batched")
    counts = {
        parallel_partitioned_join(
            rel_a, rel_b, config=replace(config, workers=workers)
        ).tile_tasks
        for workers in WORKERS
    }
    assert len(counts) == 1


def test_empty_relation_yields_empty_plan():
    from repro.datasets.relations import SpatialRelation

    rel_a, _ = _pair(random_relation_pair, SEEDS[0])
    empty = SpatialRelation("empty", [])
    plan = TreePartitioner().plan(rel_a, empty, (4, 4))
    assert plan.entries == []
    result = parallel_partitioned_join(
        rel_a, empty, config=replace(_config("intersects", "batched"),
                                     workers=2),
    )
    assert result.id_pairs() == []
    assert result.tile_tasks == 0


def test_partitioner_registry_consistency():
    from repro.core.join import PARTITIONERS

    for name in PARTITIONERS:
        assert create_partitioner(name).name == name
    with pytest.raises(ValueError, match="unknown partitioner"):
        create_partitioner("voronoi")
    assert isinstance(create_partitioner("grid"), GridPartitioner)
    assert isinstance(create_partitioner("rtree"), TreePartitioner)


def test_tree_partitioner_rejects_bad_arguments():
    with pytest.raises(ValueError, match="target_tasks"):
        TreePartitioner(target_tasks=0)
    with pytest.raises(ValueError, match="declustering curve"):
        TreePartitioner(decluster="peano")
