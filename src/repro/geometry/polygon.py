"""Polygons and polygons with holes — the paper's spatial objects (§2.1).

A :class:`Polygon` is an outer ring plus zero or more hole rings, each a
sequence of ``(x, y)`` vertices without a repeated closing vertex.  Rings
are normalised on construction: the outer ring to counter-clockwise
orientation, holes to clockwise, duplicate consecutive vertices removed.

Containment uses the even-odd rule, which treats holes uniformly: a point
is inside iff a ray from it crosses the union of all rings an odd number
of times.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

from .predicates import (
    EPSILON,
    Coord,
    is_ccw,
    on_segment,
    orientation,
    point_segment_distance,
    polygon_signed_area,
)
from .rectangle import Rect

Edge = Tuple[Coord, Coord]


def _clean_ring(points: Sequence[Coord]) -> List[Coord]:
    """Drop duplicate consecutive vertices (incl. wraparound duplicates)."""
    cleaned: List[Coord] = []
    for p in points:
        if not cleaned or abs(p[0] - cleaned[-1][0]) > EPSILON or abs(
            p[1] - cleaned[-1][1]
        ) > EPSILON:
            cleaned.append((float(p[0]), float(p[1])))
    while (
        len(cleaned) > 1
        and abs(cleaned[0][0] - cleaned[-1][0]) <= EPSILON
        and abs(cleaned[0][1] - cleaned[-1][1]) <= EPSILON
    ):
        cleaned.pop()
    return cleaned


class Polygon:
    """Simple polygon, optionally with holes.

    Parameters
    ----------
    shell:
        Outer ring vertices.  Any orientation; normalised to CCW.
    holes:
        Hole rings; normalised to CW.  Holes must lie inside the shell
        (validated only by :meth:`validate`, not on construction, because
        the synthetic data generator produces polygons by the thousands).
    """

    __slots__ = ("shell", "holes", "_mbr", "_area")

    def __init__(
        self,
        shell: Sequence[Coord],
        holes: Optional[Sequence[Sequence[Coord]]] = None,
    ):
        ring = _clean_ring(shell)
        if len(ring) < 3:
            raise ValueError(f"polygon shell needs >= 3 vertices, got {len(ring)}")
        if not is_ccw(ring):
            ring.reverse()
        self.shell: Tuple[Coord, ...] = tuple(ring)
        cleaned_holes: List[Tuple[Coord, ...]] = []
        for hole in holes or ():
            hring = _clean_ring(hole)
            if len(hring) < 3:
                raise ValueError("polygon hole needs >= 3 vertices")
            if is_ccw(hring):
                hring.reverse()
            cleaned_holes.append(tuple(hring))
        self.holes: Tuple[Tuple[Coord, ...], ...] = tuple(cleaned_holes)
        self._mbr: Optional[Rect] = None
        self._area: Optional[float] = None

    @classmethod
    def from_normalized(
        cls,
        shell: Sequence[Coord],
        holes: Sequence[Sequence[Coord]] = (),
    ) -> "Polygon":
        """Adopt already-normalised rings without re-running normalisation.

        For rings that came out of an existing polygon (``poly.shell``,
        ``poly.holes``) and travelled through a lossless representation —
        e.g. the columnar ring store shipped to worker processes.  The
        constructor's cleaning is idempotent for such rings *except* for
        zero-area rings, whose orientation normalisation would flip the
        vertex order on every round trip; adopting verbatim keeps the
        rebuilt polygon bit-identical to the source.  Callers must not
        pass rings that violate the construction invariants.
        """
        poly = cls.__new__(cls)
        poly.shell = tuple((float(x), float(y)) for x, y in shell)
        poly.holes = tuple(
            tuple((float(x), float(y)) for x, y in hole) for hole in holes
        )
        poly._mbr = None
        poly._area = None
        return poly

    # -- basic accessors ----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Total vertex count over all rings (the paper's *m*)."""
        return len(self.shell) + sum(len(h) for h in self.holes)

    @property
    def num_edges(self) -> int:
        return self.num_vertices

    def rings(self) -> Iterator[Tuple[Coord, ...]]:
        yield self.shell
        yield from self.holes

    def edges(self) -> Iterator[Edge]:
        """All edges of all rings as ``(p, q)`` pairs."""
        for ring in self.rings():
            n = len(ring)
            for i in range(n):
                yield ring[i], ring[(i + 1) % n]

    def vertices(self) -> Iterator[Coord]:
        for ring in self.rings():
            yield from ring

    # -- measures -------------------------------------------------------------

    def area(self) -> float:
        """Area of the shell minus the holes."""
        if self._area is None:
            area = abs(polygon_signed_area(self.shell))
            for hole in self.holes:
                area -= abs(polygon_signed_area(hole))
            self._area = area
        return self._area

    def perimeter(self) -> float:
        total = 0.0
        for p, q in self.edges():
            total += math.hypot(q[0] - p[0], q[1] - p[1])
        return total

    def mbr(self) -> Rect:
        """Minimum bounding rectangle (cached)."""
        if self._mbr is None:
            self._mbr = Rect.from_points(self.shell)
        return self._mbr

    def centroid(self) -> Coord:
        """Area centroid (holes subtracted)."""
        cx = cy = 0.0
        total = 0.0
        for ring, sign in [(self.shell, 1.0)] + [(h, -1.0) for h in self.holes]:
            a = abs(polygon_signed_area(ring))
            rcx = rcy = 0.0
            n = len(ring)
            accum = 0.0
            for i in range(n):
                x1, y1 = ring[i]
                x2, y2 = ring[(i + 1) % n]
                w = x1 * y2 - x2 * y1
                rcx += (x1 + x2) * w
                rcy += (y1 + y2) * w
                accum += w
            if abs(accum) > EPSILON:
                rcx /= 3.0 * accum
                rcy /= 3.0 * accum
            cx += sign * a * rcx
            cy += sign * a * rcy
            total += sign * a
        if abs(total) <= EPSILON:
            return self.mbr().center
        return (cx / total, cy / total)

    # -- containment ----------------------------------------------------------

    def contains_point(self, p: Coord) -> bool:
        """Even-odd containment; boundary points count as inside."""
        if not self.mbr().contains_point(p):
            return False
        x, y = p
        inside = False
        for ring in self.rings():
            n = len(ring)
            j = n - 1
            for i in range(n):
                xi, yi = ring[i]
                xj, yj = ring[j]
                # Boundary check: point on this edge.
                if orientation(ring[j], p, ring[i]) == 0 and on_segment(
                    ring[j], p, ring[i]
                ):
                    return True
                if (yi > y) != (yj > y):
                    x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi
                    if x < x_cross:
                        inside = not inside
                j = i
        return inside

    def contains_point_strict(self, p: Coord) -> bool:
        """Containment excluding the boundary."""
        x, y = p
        for ring in self.rings():
            n = len(ring)
            for i in range(n):
                a = ring[i]
                b = ring[(i + 1) % n]
                if orientation(a, p, b) == 0 and on_segment(a, p, b):
                    return False
        return self.contains_point(p)

    def contains_rect(self, rect: Rect) -> bool:
        """True if the closed rectangle lies entirely inside the polygon.

        Used by the MER construction: a candidate enclosed rectangle is
        valid iff (a) its corners are inside, (b) no polygon edge crosses
        its interior, and (c) no hole lies inside it.
        """
        if not self.mbr().contains_rect(rect):
            return False
        corners = rect.corners()
        for c in corners:
            if not self.contains_point(c):
                return False
        # Reject if any polygon edge passes strictly through the rect
        # interior.  Shrinking the rect slightly permits edges that merely
        # touch the rectangle border.
        inner = _shrink_rect(rect)
        if inner is not None:
            for p, q in self.edges():
                if _segment_crosses_rect_interior(p, q, inner):
                    return False
        for hole in self.holes:
            hx, hy = hole[0]
            if rect.xmin < hx < rect.xmax and rect.ymin < hy < rect.ymax:
                # A hole vertex strictly inside the rect: if the whole hole
                # is inside, the rect is not fully covered by the polygon.
                return False
        return True

    def contains_polygon(self, other: "Polygon") -> bool:
        """True if ``other`` lies entirely inside this polygon.

        Assumes the boundaries do not cross (the exact processors check
        edge intersection first, exactly as in §4 of the paper); then
        containment follows from a single point-in-polygon test, with the
        MBR pretest the paper reports saves 75–93% of the tests.
        """
        if not self.mbr().contains_rect(other.mbr()):
            return False
        return self.contains_point(other.shell[0])

    def distance_to_boundary(self, p: Coord) -> float:
        """Distance from ``p`` to the nearest point on any ring."""
        best = math.inf
        for a, b in self.edges():
            d = point_segment_distance(p, a, b)
            if d < best:
                best = d
        return best

    # -- validation -------------------------------------------------------------

    def is_simple(self) -> bool:
        """True if no two non-adjacent edges of the same ring intersect.

        O(n^2) edge pairs, evaluated by the bulk segment-intersection
        kernel (decision-identical to the scalar ``segments_intersect``
        loop it replaces); intended for tests and data validation, not
        inner loops.
        """
        # Imported lazily: fastops imports this module.
        from .fastops import ring_self_intersects_bulk

        for ring in self.rings():
            if ring_self_intersects_bulk(ring):
                return False
        return True

    def validate(self) -> None:
        """Raise ``ValueError`` on structural problems (simplicity, holes)."""
        if not self.is_simple():
            raise ValueError("polygon ring is self-intersecting")
        for hole in self.holes:
            shell_poly = Polygon(self.shell)
            for v in hole:
                if not shell_poly.contains_point(v):
                    raise ValueError("hole vertex outside shell")

    # -- transforms ----------------------------------------------------------

    def translated(self, dx: float, dy: float) -> "Polygon":
        return Polygon(
            [(x + dx, y + dy) for x, y in self.shell],
            [[(x + dx, y + dy) for x, y in h] for h in self.holes],
        )

    def rotated(self, angle: float, origin: Optional[Coord] = None) -> "Polygon":
        ox, oy = origin if origin is not None else self.centroid()
        cos_a = math.cos(angle)
        sin_a = math.sin(angle)

        def rot(p: Coord) -> Coord:
            x, y = p[0] - ox, p[1] - oy
            return (ox + x * cos_a - y * sin_a, oy + x * sin_a + y * cos_a)

        return Polygon(
            [rot(p) for p in self.shell],
            [[rot(p) for p in h] for h in self.holes],
        )

    def scaled(self, factor: float, origin: Optional[Coord] = None) -> "Polygon":
        ox, oy = origin if origin is not None else self.centroid()
        return Polygon(
            [(ox + (x - ox) * factor, oy + (y - oy) * factor) for x, y in self.shell],
            [
                [(ox + (x - ox) * factor, oy + (y - oy) * factor) for x, y in h]
                for h in self.holes
            ],
        )

    # -- dunder -------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Polygon(vertices={self.num_vertices}, holes={len(self.holes)}, "
            f"area={self.area():.6g})"
        )


def _shrink_rect(rect: Rect, rel: float = 1e-9) -> Optional[Rect]:
    """Rect shrunk by a relative epsilon; ``None`` if it would collapse."""
    pad = max(rect.width, rect.height) * rel
    if rect.width <= 2 * pad or rect.height <= 2 * pad:
        return None
    return Rect(rect.xmin + pad, rect.ymin + pad, rect.xmax - pad, rect.ymax - pad)


def _segment_crosses_rect_interior(p: Coord, q: Coord, inner: Rect) -> bool:
    from .segment import segment_intersects_rect

    return segment_intersects_rect(
        p, q, inner.xmin, inner.ymin, inner.xmax, inner.ymax
    )
