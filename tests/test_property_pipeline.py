"""End-to-end property tests: pipeline == oracle on random workloads.

DESIGN.md invariants 4-7, exercised on hypothesis-generated miniature
relations rather than the fixed tiny_europe fixture: random cluster
layouts, random filter configurations, random exact backends.
"""

import random

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.core import (
    FilterConfig,
    JoinConfig,
    SpatialJoinProcessor,
    nested_loops_join,
)
from repro.datasets import SpatialRelation
from tests.conftest import star_polygon


def random_relation(seed: int, count: int) -> SpatialRelation:
    """A relation of scattered star polygons with clustered centers."""
    rng = random.Random(seed)
    polys = []
    for i in range(count):
        cx = rng.random() * 2.0
        cy = rng.random() * 2.0
        polys.append(
            star_polygon(
                cx,
                cy,
                n=rng.randint(5, 25),
                radius=0.08 + rng.random() * 0.3,
                seed=seed * 1000 + i,
            )
        )
    return SpatialRelation(f"rand-{seed}", polys)


filter_configs = st.builds(
    FilterConfig,
    conservative=st.sampled_from([None, "MBR", "MBC", "RMBR", "4-C", "5-C", "CH", "MBE"]),
    progressive=st.sampled_from([None, "MEC", "MER"]),
    use_false_area_test=st.booleans(),
    progressive_first=st.booleans(),
)


class TestPipelineProperty:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        config=filter_configs,
    )
    @settings(max_examples=12, deadline=None)
    def test_any_filter_matches_oracle(self, seed, config):
        rel_a = random_relation(seed, 22)
        rel_b = random_relation(seed + 1, 22)
        proc = SpatialJoinProcessor(
            JoinConfig(filter=config, exact_method="vectorized")
        )
        got = set(proc.join(rel_a, rel_b).id_pairs())
        want = set(nested_loops_join(rel_a, rel_b))
        assert got == want, f"config={config.describe()}"

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        method=st.sampled_from(["trstar", "planesweep", "quadratic"]),
    )
    # Regression: the plane sweep's status order corrupted when polygon
    # edges shared their left endpoint (equal y keys inserted in
    # arbitrary order), silently dropping a result pair at this seed.
    @example(seed=403, method="planesweep")
    @settings(max_examples=8, deadline=None)
    def test_any_exact_method_matches_oracle(self, seed, method):
        rel_a = random_relation(seed, 15)
        rel_b = random_relation(seed + 7, 15)
        proc = SpatialJoinProcessor(JoinConfig(exact_method=method))
        got = set(proc.join(rel_a, rel_b).id_pairs())
        want = set(nested_loops_join(rel_a, rel_b))
        assert got == want

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_join_symmetry(self, seed):
        """Intersection joins are symmetric: join(A,B) == join(B,A)^T."""
        rel_a = random_relation(seed, 18)
        rel_b = random_relation(seed + 3, 18)
        proc = SpatialJoinProcessor(JoinConfig(exact_method="vectorized"))
        ab = set(proc.join(rel_a, rel_b).id_pairs())
        ba = {(b, a) for a, b in proc.join(rel_b, rel_a).id_pairs()}
        assert ab == ba

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_self_join_contains_diagonal(self, seed):
        rel = random_relation(seed, 20)
        proc = SpatialJoinProcessor(JoinConfig(exact_method="vectorized"))
        pairs = set(proc.join(rel, rel).id_pairs())
        for obj in rel:
            assert (obj.oid, obj.oid) in pairs

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=6, deadline=None)
    def test_within_implies_intersects(self, seed):
        rel_a = random_relation(seed, 15)
        rel_b = random_relation(seed + 5, 15)
        inter = set(
            SpatialJoinProcessor(JoinConfig(exact_method="vectorized"))
            .join(rel_a, rel_b)
            .id_pairs()
        )
        within = set(
            SpatialJoinProcessor(
                JoinConfig(predicate="within", exact_method="vectorized")
            )
            .join(rel_a, rel_b)
            .id_pairs()
        )
        assert within <= inter
