"""Minimum bounding ellipse approximation (MBE, 5 parameters)."""

from __future__ import annotations

from ..geometry import Coord, Ellipse, Polygon, Rect, minimum_enclosing_ellipse
from .base import Approximation


class MBEApproximation(Approximation):
    """Minimum-volume enclosing ellipse of the polygon's vertices."""

    kind = "MBE"
    is_conservative = True
    shape_kind = "ellipse"

    def __init__(self, ellipse: Ellipse):
        self._ellipse = ellipse

    @classmethod
    def of(cls, polygon: Polygon) -> "MBEApproximation":
        return cls(minimum_enclosing_ellipse(polygon.shell))

    @property
    def num_parameters(self) -> int:
        return 5

    def ellipse(self) -> Ellipse:
        return self._ellipse

    def area(self) -> float:
        return self._ellipse.area()

    def mbr(self) -> Rect:
        return self._ellipse.mbr()

    def contains_point(self, p: Coord) -> bool:
        return self._ellipse.contains_point(p)

    def __repr__(self) -> str:
        return f"MBEApproximation({self._ellipse!r})"
