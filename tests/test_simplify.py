"""Douglas-Peucker simplification properties."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.relations import bw
from repro.geometry import Polygon
from repro.geometry.predicates import point_segment_distance
from repro.geometry.simplify import (
    simplify_polygon,
    simplify_polyline,
    simplify_ring,
    vertex_reduction,
)


def noisy_line(n, amplitude, seed=1):
    rng = random.Random(seed)
    return [
        (i / (n - 1), amplitude * (rng.random() - 0.5)) for i in range(n)
    ]


def circle_ring(n, r=1.0):
    return [
        (r * math.cos(2 * math.pi * k / n), r * math.sin(2 * math.pi * k / n))
        for k in range(n)
    ]


class TestPolyline:
    def test_short_inputs_unchanged(self):
        assert simplify_polyline([(0, 0)], 0.1) == [(0, 0)]
        assert simplify_polyline([(0, 0), (1, 1)], 0.1) == [(0, 0), (1, 1)]

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            simplify_polyline([(0, 0), (1, 0), (2, 0)], -1)

    def test_collinear_points_collapse(self):
        line = [(float(i), 0.0) for i in range(10)]
        assert simplify_polyline(line, 1e-9) == [(0.0, 0.0), (9.0, 0.0)]

    def test_endpoints_always_kept(self):
        line = noisy_line(50, 0.01)
        out = simplify_polyline(line, 0.5)
        assert out[0] == line[0]
        assert out[-1] == line[-1]

    def test_zero_tolerance_keeps_spike(self):
        line = [(0, 0), (0.5, 1.0), (1, 0)]
        assert simplify_polyline(line, 0.0) == line

    def test_tolerance_monotone(self):
        line = noisy_line(200, 0.2, seed=7)
        sizes = [
            len(simplify_polyline(line, tol)) for tol in (0.0, 0.01, 0.05, 0.5)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_error_bound_respected(self):
        """Every dropped point stays within tolerance of the result chain."""
        line = noisy_line(120, 0.3, seed=3)
        tol = 0.05
        out = simplify_polyline(line, tol)
        kept = set(out)
        for p in line:
            if p in kept:
                continue
            best = min(
                point_segment_distance(p, out[i], out[i + 1])
                for i in range(len(out) - 1)
            )
            assert best <= tol + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 9999), tol=st.floats(0, 0.5, allow_nan=False))
    def test_property_subset_and_order(self, seed, tol):
        line = noisy_line(60, 0.2, seed=seed)
        out = simplify_polyline(line, tol)
        # result is an ordered subsequence of the input
        it = iter(line)
        assert all(p in it for p in out)


class TestRingAndPolygon:
    def test_circle_ring_simplifies(self):
        ring = circle_ring(400)
        out = simplify_ring(ring, 0.01)
        assert 3 <= len(out) < 400

    def test_ring_never_below_triangle(self):
        ring = circle_ring(100, r=0.001)
        out = simplify_ring(ring, 10.0)  # brutal tolerance
        assert len(out) >= 3

    def test_polygon_area_roughly_preserved(self):
        poly = Polygon(circle_ring(500))
        simplified = simplify_polygon(poly, 0.01)
        assert simplified.area() == pytest.approx(poly.area(), rel=0.05)
        assert simplified.num_vertices < poly.num_vertices

    def test_polygon_holes_survive_mild_tolerance(self):
        shell = circle_ring(200, r=2.0)
        hole = circle_ring(100, r=0.5)
        poly = Polygon(shell, holes=[hole])
        out = simplify_polygon(poly, 0.01)
        assert len(out.holes) == 1

    def test_tiny_holes_dropped_at_high_tolerance(self):
        shell = circle_ring(200, r=10.0)
        hole = circle_ring(30, r=0.01)
        poly = Polygon(shell, holes=[hole])
        out = simplify_polygon(poly, 1.0)
        assert len(out.holes) == 0

    def test_cartographic_reduction(self):
        rel = bw(size=8)
        for obj in rel:
            before = obj.polygon.num_vertices
            after = simplify_polygon(obj.polygon, 0.002).num_vertices
            assert after <= before


class TestVertexReduction:
    def test_zero_distance_identity(self):
        line = noisy_line(20, 0.1)
        assert vertex_reduction(line, 0.0) == line

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            vertex_reduction([(0, 0), (1, 1)], -0.5)

    def test_thinning_dense_points(self):
        line = [(i * 0.001, 0.0) for i in range(1000)]
        out = vertex_reduction(line, 0.1)
        assert len(out) <= 11
        for (x1, _), (x2, _) in zip(out, out[1:]):
            assert x2 - x1 >= 0.1 - 1e-12

    def test_keeps_at_least_two_points(self):
        line = [(0, 0), (1e-9, 0), (2e-9, 0)]
        out = vertex_reduction(line, 1.0)
        assert len(out) >= 2
