"""Tests for the within (inclusion) join and the containment tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approximations import (
    certainly_contains,
    certainly_not_contains,
    compute_approximation,
)
from repro.core import FilterConfig, JoinConfig, SpatialJoinProcessor
from repro.datasets import SpatialRelation, cartographic_polygons
from repro.geometry import Polygon, polygon_within_fast
from tests.conftest import square, star_polygon

stars = st.builds(
    star_polygon,
    n=st.integers(min_value=5, max_value=30),
    seed=st.integers(min_value=0, max_value=3000),
)


class TestPolygonWithin:
    def test_nested_squares(self):
        assert polygon_within_fast(square(0, 0, 0.3), square(0, 0, 1.0))

    def test_not_within_when_overlapping(self):
        assert not polygon_within_fast(square(0.8, 0, 0.5), square(0, 0, 1.0))

    def test_not_within_when_disjoint(self):
        assert not polygon_within_fast(square(5, 5, 0.3), square(0, 0, 1.0))

    def test_not_within_when_larger(self):
        assert not polygon_within_fast(square(0, 0, 2.0), square(0, 0, 1.0))

    def test_hole_carves_out_containment(self):
        outer = Polygon(
            [(-2, -2), (2, -2), (2, 2), (-2, 2)],
            holes=[[(-1, -1), (1, -1), (1, 1), (-1, 1)]],
        )
        inner = square(0, 0, 0.3)   # sits inside the hole
        assert not polygon_within_fast(inner, outer)
        corner = square(1.5, 1.5, 0.2)  # in the solid ring part
        assert polygon_within_fast(corner, outer)

    def test_inner_surrounding_hole_of_outer(self):
        outer = Polygon(
            [(-3, -3), (3, -3), (3, 3), (-3, 3)],
            holes=[[(-0.2, -0.2), (0.2, -0.2), (0.2, 0.2), (-0.2, 0.2)]],
        )
        ring_spanning = square(0, 0, 1.0)  # covers the hole
        assert not polygon_within_fast(ring_spanning, outer)

    @given(stars, st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_shrunk_copy_always_within(self, poly, factor):
        inner = poly.scaled(round(factor, 3))
        assert polygon_within_fast(inner, poly)


class TestContainmentApproxTests:
    @pytest.fixture(scope="class")
    def shapes(self):
        big = star_polygon(n=24, seed=1, radius=2.0)
        small = big.scaled(0.25)
        far = star_polygon(5, 5, n=12, seed=2, radius=0.3)
        return big, small, far

    @pytest.mark.parametrize("kind", ["MBR", "5-C", "CH", "MBC", "MBE"])
    def test_certainly_contains_positive(self, shapes, kind):
        big, small, _far = shapes
        outer = compute_approximation(big, kind)
        inner = compute_approximation(small, "MER")
        # small ⊆ big, so MER(small) ⊆ big ⊆ outer: must be provable for
        # polygon-shaped inners (exact) and circle inners (conservative).
        assert certainly_contains(outer, inner)

    @pytest.mark.parametrize("kind", ["MBR", "5-C", "MBC", "MBE"])
    def test_certainly_not_contains_for_distant(self, shapes, kind):
        big, _small, far = shapes
        outer = compute_approximation(big, kind)
        inner = compute_approximation(far, "MER")
        assert certainly_not_contains(outer, inner)

    @given(stars, stars, st.sampled_from(["MBR", "5-C", "MBC"]))
    @settings(max_examples=30, deadline=None)
    def test_soundness(self, p1, p2, kind):
        """The two tests never contradict each other."""
        outer = compute_approximation(p2, kind)
        inner = compute_approximation(p1, "MER")
        assert not (
            certainly_contains(outer, inner)
            and certainly_not_contains(outer, inner)
        )


class TestWithinJoinPipeline:
    @pytest.fixture(scope="class")
    def layers(self):
        cities = SpatialRelation(
            "cities", cartographic_polygons(40, 40, coverage=0.95, seed=5)
        )
        # Small patches, some inside cities, some straddling borders.
        forests = SpatialRelation(
            "forests",
            [
                p.scaled(0.35)
                for p in cartographic_polygons(90, 24, coverage=1.0, seed=6)
            ],
        )
        return forests, cities

    def oracle(self, forests, cities):
        out = set()
        for f in forests:
            for c in cities:
                if polygon_within_fast(f.polygon, c.polygon):
                    out.add((f.oid, c.oid))
        return out

    def test_matches_oracle_with_filter(self, layers):
        forests, cities = layers
        proc = SpatialJoinProcessor(JoinConfig(predicate="within"))
        result = proc.join(forests, cities)
        assert set(result.id_pairs()) == self.oracle(forests, cities)
        assert len(result) > 0, "workload should produce some within pairs"

    def test_matches_oracle_without_filter(self, layers):
        forests, cities = layers
        proc = SpatialJoinProcessor(
            JoinConfig(
                predicate="within",
                filter=FilterConfig(conservative=None, progressive=None),
            )
        )
        result = proc.join(forests, cities)
        assert set(result.id_pairs()) == self.oracle(forests, cities)

    def test_filter_identifies_pairs(self, layers):
        forests, cities = layers
        proc = SpatialJoinProcessor(JoinConfig(predicate="within"))
        stats = proc.join(forests, cities).stats
        # The MBR-containment pretest alone removes many candidates.
        assert stats.filter_false_hits > 0

    def test_unknown_predicate_rejected(self):
        with pytest.raises(ValueError):
            JoinConfig(predicate="overlaps")
