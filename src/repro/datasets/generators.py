"""Synthetic cartographic data (stand-in for the paper's Europe/BW maps).

The paper evaluates on two real relations: *Europe* (810 EC counties,
84 vertices on average) and *BW* (374 Baden-Württemberg municipalities,
527 vertices on average).  Those maps are not redistributable, so we
generate deterministic synthetic tessellations with the same structural
properties (see DESIGN.md → substitutions):

1. a Voronoi tessellation of random sites clipped to the unit data
   space gives county-like convex cells that tile the space;
2. each cell boundary is *roughened* by recursive midpoint displacement
   to the paper's vertex counts, producing the ragged borders that give
   the MBR its ~1.0 normalized false area (Table 1).

The roughening keeps displacement amplitudes small relative to the
subdivided segment, so the polygons remain simple (validated in tests).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.spatial import Voronoi

from ..geometry import Coord, Polygon, Rect

#: the unit data space used throughout the reproduction.
DATA_SPACE = Rect(0.0, 0.0, 1.0, 1.0)


def voronoi_cells(
    n_sites: int, rng: random.Random, data_space: Rect = DATA_SPACE
) -> List[List[Coord]]:
    """Voronoi cells of ``n_sites`` random sites, clipped to the space.

    Clipping uses the mirror trick: the sites are reflected across all
    four boundary edges, so the cells of the original sites are finite
    and exactly tile the data space.
    """
    if n_sites < 3:
        raise ValueError("need at least 3 sites for a tessellation")
    sites = np.array(
        [
            (
                data_space.xmin + rng.random() * data_space.width,
                data_space.ymin + rng.random() * data_space.height,
            )
            for _ in range(n_sites)
        ]
    )
    mirrored = [sites]
    mirrored.append(np.column_stack([2 * data_space.xmin - sites[:, 0], sites[:, 1]]))
    mirrored.append(np.column_stack([2 * data_space.xmax - sites[:, 0], sites[:, 1]]))
    mirrored.append(np.column_stack([sites[:, 0], 2 * data_space.ymin - sites[:, 1]]))
    mirrored.append(np.column_stack([sites[:, 0], 2 * data_space.ymax - sites[:, 1]]))
    all_sites = np.vstack(mirrored)
    vor = Voronoi(all_sites)
    cells: List[List[Coord]] = []
    for i in range(n_sites):
        region = vor.regions[vor.point_region[i]]
        if -1 in region or not region:
            continue  # cannot happen with the mirror trick, but be safe
        cell = [
            (float(vor.vertices[v][0]), float(vor.vertices[v][1])) for v in region
        ]
        cells.append(cell)
    return cells


def roughen_ring(
    ring: Sequence[Coord],
    target_vertices: int,
    roughness: float,
    rng: random.Random,
) -> List[Coord]:
    """Subdivide and displace a ring to ~``target_vertices`` vertices.

    Each edge is recursively halved; every new midpoint is displaced
    perpendicular to its segment by a zero-mean offset bounded by
    ``roughness`` times the segment length.  Displacements shrink with
    the subdivision level, which keeps the curve inside a narrow lens
    around the original edge and the ring simple for roughness ≲ 0.25.
    """
    n_edges = len(ring)
    if target_vertices <= n_edges:
        return list(ring)
    lengths = [
        math.hypot(
            ring[(i + 1) % n_edges][0] - ring[i][0],
            ring[(i + 1) % n_edges][1] - ring[i][1],
        )
        for i in range(n_edges)
    ]
    total_len = sum(lengths) or 1.0
    extra_budget = target_vertices - n_edges
    out: List[Coord] = []
    for i in range(n_edges):
        a = ring[i]
        b = ring[(i + 1) % n_edges]
        share = int(round(extra_budget * lengths[i] / total_len))
        levels = max(0, math.ceil(math.log2(share + 1)))
        chain = _displaced_chain(a, b, levels, roughness, rng)
        chain = _downsample_chain(chain, share + 2)
        out.extend(chain[:-1])
    return out


def _downsample_chain(chain: List[Coord], target_points: int) -> List[Coord]:
    """Evenly subsample a chain to ``target_points`` (endpoints kept).

    Midpoint displacement produces power-of-two segment counts; this
    trims the chain so per-object vertex targets are met exactly.
    """
    if len(chain) <= target_points:
        return chain
    step = (len(chain) - 1) / (target_points - 1)
    return [chain[int(round(i * step))] for i in range(target_points)]


def _displaced_chain(
    a: Coord, b: Coord, levels: int, roughness: float, rng: random.Random
) -> List[Coord]:
    """Midpoint-displacement curve from ``a`` to ``b`` (inclusive)."""
    if levels <= 0:
        return [a, b]
    points = [a, b]
    amp = roughness
    for _ in range(levels):
        refined: List[Coord] = []
        for p, q in zip(points, points[1:]):
            mx = (p[0] + q[0]) / 2.0
            my = (p[1] + q[1]) / 2.0
            dx = q[0] - p[0]
            dy = q[1] - p[1]
            length = math.hypot(dx, dy)
            if length > 0:
                offset = (rng.random() * 2.0 - 1.0) * amp * length
                mx += -dy / length * offset
                my += dx / length * offset
            refined.append(p)
            refined.append((mx, my))
        refined.append(points[-1])
        points = refined
        amp *= 0.55  # decay keeps lower levels from folding the curve
    return points


def lognormal_vertex_targets(
    count: int,
    mean_vertices: float,
    min_vertices: int,
    max_vertices: int,
    rng: random.Random,
) -> List[int]:
    """Per-object vertex targets with a cartography-like skew.

    Real municipality maps have many mid-complexity objects and a long
    tail (Europe: 4…869 around a mean of 84).  A lognormal with σ≈0.8
    reproduces that skew; the sample is rescaled to hit the mean.
    """
    sigma = 0.8
    mu = math.log(mean_vertices) - sigma * sigma / 2.0
    raw = [rng.lognormvariate(mu, sigma) for _ in range(count)]
    scale = mean_vertices * count / sum(raw)
    return [
        int(max(min_vertices, min(max_vertices, round(r * scale)))) for r in raw
    ]


def cartographic_polygons(
    n_objects: int,
    mean_vertices: float,
    min_vertices: int = 4,
    max_vertices: int = 2000,
    roughness: float = 0.24,
    coverage: float = 0.78,
    seed: int = 1994,
) -> List[Polygon]:
    """Generate a synthetic cartographic relation (list of polygons).

    ``coverage`` shrinks every cell linearly towards its centroid: real
    cartographic relations do not tile their data space completely
    (coastlines, lakes, unmapped area), and a full tessellation would
    roughly double the MBR-join candidate count relative to the paper's
    Table 2.  0.78 linear coverage calibrates the candidate-per-object
    ratio to the paper's while leaving the hit/false-hit ratio (~2:1)
    untouched.
    """
    rng = random.Random(seed)
    cells = voronoi_cells(n_objects, rng)
    targets = lognormal_vertex_targets(
        len(cells), mean_vertices, min_vertices, max_vertices, rng
    )
    polygons: List[Polygon] = []
    for cell, target in zip(cells, targets):
        ring = roughen_ring(cell, target, roughness, rng)
        poly = Polygon(ring)
        if coverage < 1.0:
            poly = poly.scaled(coverage)
        polygons.append(poly)
    return polygons


def relation_statistics(polygons: Sequence[Polygon]) -> Dict[str, float]:
    """#objects and vertex-count statistics (paper Figure 2)."""
    counts = [p.num_vertices for p in polygons]
    return {
        "objects": len(polygons),
        "m_avg": sum(counts) / len(counts) if counts else 0.0,
        "m_min": min(counts) if counts else 0,
        "m_max": max(counts) if counts else 0,
    }


def uniform_rect_items(
    n: int, seed: int, avg_extent: float = 0.01
) -> List[Tuple[Rect, int]]:
    """Plain random rectangles (index micro-benchmarks and tests)."""
    rng = random.Random(seed)
    out: List[Tuple[Rect, int]] = []
    for i in range(n):
        w = rng.random() * 2 * avg_extent
        h = rng.random() * 2 * avg_extent
        x = rng.random() * (1 - w)
        y = rng.random() * (1 - h)
        out.append((Rect(x, y, x + w, y + h), i))
    return out
